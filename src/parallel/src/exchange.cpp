#include "grist/parallel/exchange.hpp"

#include <unistd.h>

#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

namespace grist::parallel {

namespace {

// Fixed-size shape signature a rank process publishes into its transport
// shape slot so planLocal() can cross-validate queued shapes between
// address spaces. POD on purpose: it is read raw out of shared memory.
struct ShapeSig {
  std::uint32_t pid = 0;
  std::uint32_t ncell = 0;
  std::uint32_t nedge = 0;
  std::int32_t comps[52] = {};  // cell comps then edge comps
};
static_assert(sizeof(ShapeSig) <= Transport::kShapeSlotBytes,
              "ShapeSig must fit the transport shape slot");
constexpr std::size_t kMaxSigVars = sizeof(ShapeSig::comps) / sizeof(std::int32_t);

std::int64_t nowNs() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

} // namespace

Communicator::Communicator(const Decomposition& decomp)
    : Communicator(decomp, std::make_shared<InProcessTransport>(), kAllRanks) {}

Communicator::Communicator(const Decomposition& decomp,
                           std::shared_ptr<Transport> transport, Index local_rank)
    : decomp_(&decomp), transport_(std::move(transport)), local_rank_(local_rank) {
  if (transport_->distributed() && local_rank_ == kAllRanks) {
    throw std::invalid_argument(
        std::string("Communicator: the ") + transport_->name() +
        " transport is distributed (one process per rank); bind a local rank");
  }
  if (local_rank_ != kAllRanks &&
      (local_rank_ < 0 || local_rank_ >= decomp.nranks)) {
    throw std::invalid_argument("Communicator: local rank out of range");
  }
  round_.assign(static_cast<std::size_t>(decomp.nranks), 0);
  // Per-rank pattern index lists: prefer the ones decompose() precomputed,
  // fall back to a local scan for hand-built decompositions (tests).
  if (static_cast<Index>(decomp.patterns_from.size()) == decomp.nranks &&
      static_cast<Index>(decomp.patterns_to.size()) == decomp.nranks) {
    from_ = decomp.patterns_from;
    to_ = decomp.patterns_to;
  } else {
    from_.resize(static_cast<std::size_t>(decomp.nranks));
    to_.resize(static_cast<std::size_t>(decomp.nranks));
    for (std::size_t p = 0; p < decomp.patterns.size(); ++p) {
      const ExchangePattern& pat = decomp.patterns[p];
      from_[static_cast<std::size_t>(pat.from)].push_back(static_cast<Index>(p));
      to_[static_cast<std::size_t>(pat.to)].push_back(static_cast<Index>(p));
    }
  }
}

void Communicator::validateShapes(const std::vector<ExchangeList>& lists) const {
  const ExchangeList& ref = lists[0];
  for (std::size_t r = 1; r < lists.size(); ++r) {
    const ExchangeList& l = lists[r];
    if (l.cellVars().size() != ref.cellVars().size()) {
      throw std::invalid_argument(
          "Communicator: rank " + std::to_string(r) + " queues " +
          std::to_string(l.cellVars().size()) + " cell vars, rank 0 queues " +
          std::to_string(ref.cellVars().size()));
    }
    if (l.edgeVars().size() != ref.edgeVars().size()) {
      throw std::invalid_argument(
          "Communicator: rank " + std::to_string(r) + " queues " +
          std::to_string(l.edgeVars().size()) + " edge vars, rank 0 queues " +
          std::to_string(ref.edgeVars().size()));
    }
    for (std::size_t v = 0; v < ref.cellVars().size(); ++v) {
      if (l.cellVars()[v].ncomp != ref.cellVars()[v].ncomp) {
        throw std::invalid_argument(
            "Communicator: cell var " + std::to_string(v) + " on rank " +
            std::to_string(r) + " has ncomp " +
            std::to_string(l.cellVars()[v].ncomp) + ", rank 0 has " +
            std::to_string(ref.cellVars()[v].ncomp));
      }
    }
    for (std::size_t v = 0; v < ref.edgeVars().size(); ++v) {
      if (l.edgeVars()[v].ncomp != ref.edgeVars()[v].ncomp) {
        throw std::invalid_argument(
            "Communicator: edge var " + std::to_string(v) + " on rank " +
            std::to_string(r) + " has ncomp " +
            std::to_string(l.edgeVars()[v].ncomp) + ", rank 0 has " +
            std::to_string(ref.edgeVars()[v].ncomp));
      }
    }
  }
}

void Communicator::crossValidateShapes(const ExchangeList& list) {
  std::uint8_t* mine = transport_->shapeSlot(local_rank_);
  if (mine == nullptr) return;  // transport has no cross-process seam

  const std::size_t ncell = list.cellVars().size();
  const std::size_t nedge = list.edgeVars().size();
  if (ncell + nedge > kMaxSigVars) {
    throw std::invalid_argument(
        "Communicator: too many variables for cross-process shape "
        "validation (" +
        std::to_string(ncell + nedge) + " > " + std::to_string(kMaxSigVars) + ")");
  }
  ShapeSig sig;
  sig.pid = static_cast<std::uint32_t>(::getpid());
  sig.ncell = static_cast<std::uint32_t>(ncell);
  sig.nedge = static_cast<std::uint32_t>(nedge);
  for (std::size_t v = 0; v < ncell; ++v) sig.comps[v] = list.cellVars()[v].ncomp;
  for (std::size_t v = 0; v < nedge; ++v) {
    sig.comps[ncell + v] = list.edgeVars()[v].ncomp;
  }
  std::memcpy(mine, &sig, sizeof(sig));
  // Rendezvous: every rank's slot is written before anyone compares.
  transport_->barrier();

  const std::string where =
      std::string("Communicator[") + transport_->name() + "]: ";
  const std::string me = "rank " + std::to_string(local_rank_) + " (pid " +
                         std::to_string(sig.pid) + ")";
  for (Index r = 0; r < decomp_->nranks; ++r) {
    if (r == local_rank_) continue;
    ShapeSig peer;
    std::memcpy(&peer, transport_->shapeSlot(r), sizeof(peer));
    const std::string who = "rank " + std::to_string(r) + " (pid " +
                            std::to_string(peer.pid) + ")";
    if (peer.ncell != sig.ncell) {
      throw std::invalid_argument(where + who + " queues " +
                                  std::to_string(peer.ncell) + " cell vars, " +
                                  me + " queues " + std::to_string(sig.ncell));
    }
    if (peer.nedge != sig.nedge) {
      throw std::invalid_argument(where + who + " queues " +
                                  std::to_string(peer.nedge) + " edge vars, " +
                                  me + " queues " + std::to_string(sig.nedge));
    }
    for (std::size_t v = 0; v < ncell + nedge; ++v) {
      if (peer.comps[v] == sig.comps[v]) continue;
      const bool cell = v < ncell;
      const std::size_t idx = cell ? v : v - ncell;
      throw std::invalid_argument(
          where + (cell ? "cell" : "edge") + " var " + std::to_string(idx) +
          " on " + who + " has ncomp " + std::to_string(peer.comps[v]) + ", " +
          me + " has " + std::to_string(sig.comps[v]));
    }
  }
}

void Communicator::finishPlan(const ExchangeList& ref) {
  plan_cell_comps_.clear();
  plan_edge_comps_.clear();
  std::int64_t cell_doubles = 0, edge_doubles = 0;  // per send entity
  for (const auto& v : ref.cellVars()) {
    plan_cell_comps_.push_back(v.ncomp);
    cell_doubles += v.ncomp;
  }
  for (const auto& v : ref.edgeVars()) {
    plan_edge_comps_.push_back(v.ncomp);
    edge_doubles += v.ncomp;
  }

  const auto& patterns = decomp_->patterns;
  pattern_doubles_.resize(patterns.size());
  msg_bytes_.resize(patterns.size());
  round_bytes_ = 0;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const std::int64_t doubles = patterns[p].nsend_cells * cell_doubles +
                                 patterns[p].nsend_edges * edge_doubles;
    pattern_doubles_[p] = doubles;
    msg_bytes_[p] = doubles * static_cast<std::int64_t>(sizeof(double));
    round_bytes_ += msg_bytes_[p];
  }
  // One message per neighbor-pair pattern per round (the paper's batching
  // invariant), independent of how many variables are queued.
  round_msgs_ = static_cast<std::int64_t>(patterns.size());

  // Size the transport's single-slot buffers (collective rendezvous for a
  // distributed transport) and cache the slot pointers for the hot path.
  transport_->allocate(pattern_doubles_);
  bufs_.resize(patterns.size());
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    bufs_[p] = transport_->buffer(p);
  }

  rank_out_bytes_.assign(static_cast<std::size_t>(decomp_->nranks), 0);
  rank_out_msgs_.assign(static_cast<std::size_t>(decomp_->nranks), 0);
  for (Index r = 0; r < decomp_->nranks; ++r) {
    for (const Index p : from_[static_cast<std::size_t>(r)]) {
      rank_out_bytes_[r] += msg_bytes_[p];
    }
    rank_out_msgs_[r] =
        static_cast<std::int64_t>(from_[static_cast<std::size_t>(r)].size());
  }
  planned_ = true;
}

bool Communicator::planMatches(const ExchangeList& ref) const {
  if (!planned_) return false;
  bool match = ref.cellVars().size() == plan_cell_comps_.size() &&
               ref.edgeVars().size() == plan_edge_comps_.size();
  for (std::size_t v = 0; match && v < plan_cell_comps_.size(); ++v) {
    match = ref.cellVars()[v].ncomp == plan_cell_comps_[v];
  }
  for (std::size_t v = 0; match && v < plan_edge_comps_.size(); ++v) {
    match = ref.edgeVars()[v].ncomp == plan_edge_comps_[v];
  }
  return match;
}

void Communicator::plan(std::vector<ExchangeList>& lists) {
  if (local_rank_ != kAllRanks) {
    throw std::logic_error(
        "Communicator: plan() is collective; a local-rank communicator "
        "must use planLocal()");
  }
  if (static_cast<Index>(lists.size()) != decomp_->nranks) {
    throw std::invalid_argument("Communicator: one list per rank required");
  }
  validateShapes(lists);
  lists_ = &lists;
  finishPlan(lists[0]);
}

void Communicator::planLocal(ExchangeList& list) {
  if (local_rank_ == kAllRanks) {
    throw std::logic_error(
        "Communicator: planLocal() requires a local-rank communicator");
  }
  local_list_ = &list;
  if (planMatches(list)) return;  // rebind only; buffers stay as planned
  // Validate shapes BETWEEN processes before sizing any buffer: a mismatch
  // must die with a named rank/pid, not a segment-size conflict.
  crossValidateShapes(list);
  finishPlan(list);
}

void Communicator::ensurePlan(std::vector<ExchangeList>& lists) {
  if (static_cast<Index>(lists.size()) != decomp_->nranks) {
    throw std::invalid_argument("Communicator: one list per rank required");
  }
  validateShapes(lists);
  if (planMatches(lists[0])) {
    lists_ = &lists;  // rebind data pointers; buffers stay as planned
    return;
  }
  plan(lists);
}

const ExchangeList& Communicator::listFor(Index rank) const {
  return local_rank_ != kAllRanks ? *local_list_
                                  : (*lists_)[static_cast<std::size_t>(rank)];
}

void Communicator::packMessage(std::size_t p) {
  const ExchangePattern& pat = decomp_->patterns[p];
  const ExchangeList& src = listFor(pat.from);
  double* w = bufs_[p];
  for (const auto& var : src.cellVars()) {
    const std::size_t row = static_cast<std::size_t>(var.ncomp) * sizeof(double);
    for (const Index lc : pat.send_cells) {
      std::memcpy(w, var.data + static_cast<std::size_t>(lc) * var.ncomp, row);
      w += var.ncomp;
    }
  }
  for (const auto& var : src.edgeVars()) {
    const std::size_t row = static_cast<std::size_t>(var.ncomp) * sizeof(double);
    for (const Index le : pat.send_edges) {
      std::memcpy(w, var.data + static_cast<std::size_t>(le) * var.ncomp, row);
      w += var.ncomp;
    }
  }
}

void Communicator::unpackMessage(std::size_t p) {
  const ExchangePattern& pat = decomp_->patterns[p];
  const ExchangeList& dst = listFor(pat.to);
  const double* r = bufs_[p];
  for (const auto& var : dst.cellVars()) {
    const std::size_t row = static_cast<std::size_t>(var.ncomp) * sizeof(double);
    for (const Index lc : pat.recv_cells) {
      std::memcpy(var.data + static_cast<std::size_t>(lc) * var.ncomp, r, row);
      r += var.ncomp;
    }
  }
  for (const auto& var : dst.edgeVars()) {
    const std::size_t row = static_cast<std::size_t>(var.ncomp) * sizeof(double);
    for (const Index le : pat.recv_edges) {
      std::memcpy(var.data + static_cast<std::size_t>(le) * var.ncomp, r, row);
      r += var.ncomp;
    }
  }
}

void Communicator::exchange(std::vector<ExchangeList>& lists) {
  if (local_rank_ != kAllRanks) {
    throw std::logic_error(
        "Communicator: the collective exchange() needs every rank's arrays "
        "in one address space; distributed transports use post()/wait()");
  }
  ensurePlan(lists);
  const std::size_t npat = decomp_->patterns.size();
  // Collective form of the packed transport: pack every pattern, then
  // unpack every pattern. The two phases are each parallelized across
  // patterns; the phase boundary is the "transfer".
#pragma omp parallel for schedule(dynamic)
  for (std::size_t p = 0; p < npat; ++p) packMessage(p);
  if (wire_latency_.count() > 0) {
    // All messages are in flight concurrently, so the collective round
    // stalls one wire-latency window before anything is consumable --
    // there is no interior work to run under it here.
    std::this_thread::sleep_for(wire_latency_);
  }
#pragma omp parallel for schedule(dynamic)
  for (std::size_t p = 0; p < npat; ++p) unpackMessage(p);
  // Keep the overlap protocol's sequence numbers in lockstep with the
  // collective rounds so the two forms can interleave between steps.
  for (std::size_t p = 0; p < npat; ++p) transport_->advanceRound(p);
  for (auto& r : round_) ++r;
  transport_->addTraffic(round_msgs_, round_bytes_, 1);
}

void Communicator::exchangeUnpacked(std::vector<ExchangeList>& lists) {
  if (local_rank_ != kAllRanks) {
    throw std::logic_error(
        "Communicator: exchangeUnpacked() needs every rank's arrays in one "
        "address space; distributed transports use post()/wait()");
  }
  ensurePlan(lists);  // shape validation + O(1) traffic totals
  const auto& patterns = decomp_->patterns;
  // Seed transport: element-wise copies straight from the sender's arrays
  // into the receiver's, kept as the ablation baseline for the packed path.
#pragma omp parallel for schedule(dynamic)
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const ExchangePattern& pat = patterns[p];
    const ExchangeList& src = lists[pat.from];
    const ExchangeList& dst = lists[pat.to];
    for (std::size_t v = 0; v < src.cellVars().size(); ++v) {
      const auto& sv = src.cellVars()[v];
      const auto& dv = dst.cellVars()[v];
      for (std::size_t i = 0; i < pat.send_cells.size(); ++i) {
        const double* from = sv.data + static_cast<std::size_t>(pat.send_cells[i]) * sv.ncomp;
        double* to = dv.data + static_cast<std::size_t>(pat.recv_cells[i]) * dv.ncomp;
        for (int k = 0; k < sv.ncomp; ++k) to[k] = from[k];
      }
    }
    for (std::size_t v = 0; v < src.edgeVars().size(); ++v) {
      const auto& sv = src.edgeVars()[v];
      const auto& dv = dst.edgeVars()[v];
      for (std::size_t i = 0; i < pat.send_edges.size(); ++i) {
        const double* from = sv.data + static_cast<std::size_t>(pat.send_edges[i]) * sv.ncomp;
        double* to = dv.data + static_cast<std::size_t>(pat.recv_edges[i]) * dv.ncomp;
        for (int k = 0; k < sv.ncomp; ++k) to[k] = from[k];
      }
    }
  }
  if (wire_latency_.count() > 0) std::this_thread::sleep_for(wire_latency_);
  for (std::size_t p = 0; p < patterns.size(); ++p) transport_->advanceRound(p);
  for (auto& r : round_) ++r;
  transport_->addTraffic(round_msgs_, round_bytes_, 1);
}

void Communicator::post(Index rank) {
  if (!planned_) {
    throw std::logic_error("Communicator::post: plan() the lists first");
  }
  if (local_rank_ != kAllRanks && rank != local_rank_) {
    throw std::logic_error(
        "Communicator::post: this process is bound to rank " +
        std::to_string(local_rank_) + ", not rank " + std::to_string(rank));
  }
  const std::uint64_t seq = ++round_[rank];
  const bool wire = wire_latency_.count() > 0;
  for (const Index p : from_[static_cast<std::size_t>(rank)]) {
    // Back-pressure: the transport blocks until the receiver consumed the
    // previous round's message (single-slot semantics on every transport).
    transport_->waitSendSlot(static_cast<std::size_t>(p), seq);
    packMessage(static_cast<std::size_t>(p));
    const std::int64_t deliver_at_ns =
        wire ? nowNs() + std::chrono::duration_cast<std::chrono::nanoseconds>(
                             wire_latency_)
                             .count()
             : 0;
    transport_->publish(static_cast<std::size_t>(p), seq, deliver_at_ns);
  }
  transport_->addTraffic(rank_out_msgs_[rank], rank_out_bytes_[rank],
                         rank == 0 ? 1 : 0);
}

void Communicator::wait(Index rank) {
  if (local_rank_ != kAllRanks && rank != local_rank_) {
    throw std::logic_error(
        "Communicator::wait: this process is bound to rank " +
        std::to_string(local_rank_) + ", not rank " + std::to_string(rank));
  }
  const std::uint64_t seq = round_[rank];  // advanced by this round's post()
  for (const Index p : to_[static_cast<std::size_t>(rank)]) {
    const std::int64_t deliver_at_ns =
        transport_->waitPosted(static_cast<std::size_t>(p), seq);
    if (deliver_at_ns != 0) {
      // Sleep out whatever part of the wire latency the interior compute
      // did not already cover (the overlap win: usually none of it).
      std::this_thread::sleep_until(std::chrono::steady_clock::time_point(
          std::chrono::duration_cast<std::chrono::steady_clock::duration>(
              std::chrono::nanoseconds(deliver_at_ns))));
    }
    unpackMessage(static_cast<std::size_t>(p));
    transport_->consume(static_cast<std::size_t>(p), seq);
  }
}

void Communicator::setWireLatency(double seconds) {
  wire_latency_ = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds < 0.0 ? 0.0 : seconds));
}

double Communicator::wireLatency() const {
  return std::chrono::duration<double>(wire_latency_).count();
}

} // namespace grist::parallel
