#include "grist/parallel/exchange.hpp"

#include <stdexcept>

namespace grist::parallel {

void Communicator::exchange(std::vector<ExchangeList>& lists) {
  if (static_cast<Index>(lists.size()) != decomp_->nranks) {
    throw std::invalid_argument("Communicator::exchange: one list per rank required");
  }
  // Each pattern is one "message": all queued variables packed together.
  // Copies go straight from the sender's arrays into the receiver's; the
  // pack/unpack pair of a real MPI transport collapses into one gather.
  const auto& patterns = decomp_->patterns;
#pragma omp parallel for schedule(dynamic)
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const ExchangePattern& pat = patterns[p];
    const ExchangeList& src = lists[pat.from];
    const ExchangeList& dst = lists[pat.to];
    for (std::size_t v = 0; v < src.cellVars().size(); ++v) {
      const auto& sv = src.cellVars()[v];
      const auto& dv = dst.cellVars()[v];
      for (std::size_t i = 0; i < pat.send_cells.size(); ++i) {
        const double* from = sv.data + static_cast<std::size_t>(pat.send_cells[i]) * sv.ncomp;
        double* to = dv.data + static_cast<std::size_t>(pat.recv_cells[i]) * dv.ncomp;
        for (int k = 0; k < sv.ncomp; ++k) to[k] = from[k];
      }
    }
    for (std::size_t v = 0; v < src.edgeVars().size(); ++v) {
      const auto& sv = src.edgeVars()[v];
      const auto& dv = dst.edgeVars()[v];
      for (std::size_t i = 0; i < pat.send_edges.size(); ++i) {
        const double* from = sv.data + static_cast<std::size_t>(pat.send_edges[i]) * sv.ncomp;
        double* to = dv.data + static_cast<std::size_t>(pat.recv_edges[i]) * dv.ncomp;
        for (int k = 0; k < sv.ncomp; ++k) to[k] = from[k];
      }
    }
  }

  // Traffic accounting (serial; cheap relative to the copies above).
  std::int64_t bytes = 0;
  std::int64_t messages = 0;
  for (const ExchangePattern& pat : patterns) {
    std::int64_t message_bytes = 0;
    for (const auto& var : lists[pat.from].cellVars()) {
      message_bytes += static_cast<std::int64_t>(pat.send_cells.size()) * var.ncomp * 8;
    }
    for (const auto& var : lists[pat.from].edgeVars()) {
      message_bytes += static_cast<std::int64_t>(pat.send_edges.size()) * var.ncomp * 8;
    }
    if (message_bytes > 0) {
      ++messages;
      bytes += message_bytes;
    }
  }
  stats_.messages += messages;
  stats_.bytes += bytes;
  stats_.exchanges += 1;
}

} // namespace grist::parallel
