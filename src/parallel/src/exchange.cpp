#include "grist/parallel/exchange.hpp"

#include <cstring>
#include <stdexcept>
#include <string>
#include <thread>

namespace grist::parallel {

Communicator::Communicator(const Decomposition& decomp) : decomp_(&decomp) {
  round_.assign(static_cast<std::size_t>(decomp.nranks), 0);
  // Per-rank pattern index lists: prefer the ones decompose() precomputed,
  // fall back to a local scan for hand-built decompositions (tests).
  if (static_cast<Index>(decomp.patterns_from.size()) == decomp.nranks &&
      static_cast<Index>(decomp.patterns_to.size()) == decomp.nranks) {
    from_ = decomp.patterns_from;
    to_ = decomp.patterns_to;
  } else {
    from_.resize(static_cast<std::size_t>(decomp.nranks));
    to_.resize(static_cast<std::size_t>(decomp.nranks));
    for (std::size_t p = 0; p < decomp.patterns.size(); ++p) {
      const ExchangePattern& pat = decomp.patterns[p];
      from_[static_cast<std::size_t>(pat.from)].push_back(static_cast<Index>(p));
      to_[static_cast<std::size_t>(pat.to)].push_back(static_cast<Index>(p));
    }
  }
}

void Communicator::validateShapes(const std::vector<ExchangeList>& lists) const {
  const ExchangeList& ref = lists[0];
  for (std::size_t r = 1; r < lists.size(); ++r) {
    const ExchangeList& l = lists[r];
    if (l.cellVars().size() != ref.cellVars().size()) {
      throw std::invalid_argument(
          "Communicator: rank " + std::to_string(r) + " queues " +
          std::to_string(l.cellVars().size()) + " cell vars, rank 0 queues " +
          std::to_string(ref.cellVars().size()));
    }
    if (l.edgeVars().size() != ref.edgeVars().size()) {
      throw std::invalid_argument(
          "Communicator: rank " + std::to_string(r) + " queues " +
          std::to_string(l.edgeVars().size()) + " edge vars, rank 0 queues " +
          std::to_string(ref.edgeVars().size()));
    }
    for (std::size_t v = 0; v < ref.cellVars().size(); ++v) {
      if (l.cellVars()[v].ncomp != ref.cellVars()[v].ncomp) {
        throw std::invalid_argument(
            "Communicator: cell var " + std::to_string(v) + " on rank " +
            std::to_string(r) + " has ncomp " +
            std::to_string(l.cellVars()[v].ncomp) + ", rank 0 has " +
            std::to_string(ref.cellVars()[v].ncomp));
      }
    }
    for (std::size_t v = 0; v < ref.edgeVars().size(); ++v) {
      if (l.edgeVars()[v].ncomp != ref.edgeVars()[v].ncomp) {
        throw std::invalid_argument(
            "Communicator: edge var " + std::to_string(v) + " on rank " +
            std::to_string(r) + " has ncomp " +
            std::to_string(l.edgeVars()[v].ncomp) + ", rank 0 has " +
            std::to_string(ref.edgeVars()[v].ncomp));
      }
    }
  }
}

void Communicator::plan(std::vector<ExchangeList>& lists) {
  if (static_cast<Index>(lists.size()) != decomp_->nranks) {
    throw std::invalid_argument("Communicator: one list per rank required");
  }
  validateShapes(lists);
  lists_ = &lists;

  plan_cell_comps_.clear();
  plan_edge_comps_.clear();
  std::int64_t cell_doubles = 0, edge_doubles = 0;  // per send entity
  for (const auto& v : lists[0].cellVars()) {
    plan_cell_comps_.push_back(v.ncomp);
    cell_doubles += v.ncomp;
  }
  for (const auto& v : lists[0].edgeVars()) {
    plan_edge_comps_.push_back(v.ncomp);
    edge_doubles += v.ncomp;
  }

  const auto& patterns = decomp_->patterns;
  messages_.resize(patterns.size());
  round_bytes_ = 0;
  round_msgs_ = 0;
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    if (!messages_[p]) messages_[p] = std::make_unique<PackedMessage>();
    PackedMessage& msg = *messages_[p];
    const std::int64_t doubles = patterns[p].nsend_cells * cell_doubles +
                                 patterns[p].nsend_edges * edge_doubles;
    msg.buffer.resize(static_cast<std::size_t>(doubles));
    msg.bytes = doubles * static_cast<std::int64_t>(sizeof(double));
    round_bytes_ += msg.bytes;
  }
  // One message per neighbor-pair pattern per round (the paper's batching
  // invariant), independent of how many variables are queued.
  round_msgs_ = static_cast<std::int64_t>(patterns.size());

  rank_out_bytes_.assign(static_cast<std::size_t>(decomp_->nranks), 0);
  rank_out_msgs_.assign(static_cast<std::size_t>(decomp_->nranks), 0);
  for (Index r = 0; r < decomp_->nranks; ++r) {
    for (const Index p : from_[static_cast<std::size_t>(r)]) {
      rank_out_bytes_[r] += messages_[p]->bytes;
    }
    rank_out_msgs_[r] =
        static_cast<std::int64_t>(from_[static_cast<std::size_t>(r)].size());
  }
  planned_ = true;
}

void Communicator::ensurePlan(std::vector<ExchangeList>& lists) {
  if (static_cast<Index>(lists.size()) != decomp_->nranks) {
    throw std::invalid_argument("Communicator: one list per rank required");
  }
  validateShapes(lists);
  if (planned_) {
    const ExchangeList& ref = lists[0];
    bool match = ref.cellVars().size() == plan_cell_comps_.size() &&
                 ref.edgeVars().size() == plan_edge_comps_.size();
    for (std::size_t v = 0; match && v < plan_cell_comps_.size(); ++v) {
      match = ref.cellVars()[v].ncomp == plan_cell_comps_[v];
    }
    for (std::size_t v = 0; match && v < plan_edge_comps_.size(); ++v) {
      match = ref.edgeVars()[v].ncomp == plan_edge_comps_[v];
    }
    if (match) {
      lists_ = &lists;  // rebind data pointers; buffers stay as planned
      return;
    }
  }
  plan(lists);
}

void Communicator::packMessage(std::size_t p) {
  const ExchangePattern& pat = decomp_->patterns[p];
  const ExchangeList& src = (*lists_)[pat.from];
  double* w = messages_[p]->buffer.data();
  for (const auto& var : src.cellVars()) {
    const std::size_t row = static_cast<std::size_t>(var.ncomp) * sizeof(double);
    for (const Index lc : pat.send_cells) {
      std::memcpy(w, var.data + static_cast<std::size_t>(lc) * var.ncomp, row);
      w += var.ncomp;
    }
  }
  for (const auto& var : src.edgeVars()) {
    const std::size_t row = static_cast<std::size_t>(var.ncomp) * sizeof(double);
    for (const Index le : pat.send_edges) {
      std::memcpy(w, var.data + static_cast<std::size_t>(le) * var.ncomp, row);
      w += var.ncomp;
    }
  }
}

void Communicator::unpackMessage(std::size_t p) {
  const ExchangePattern& pat = decomp_->patterns[p];
  const ExchangeList& dst = (*lists_)[pat.to];
  const double* r = messages_[p]->buffer.data();
  for (const auto& var : dst.cellVars()) {
    const std::size_t row = static_cast<std::size_t>(var.ncomp) * sizeof(double);
    for (const Index lc : pat.recv_cells) {
      std::memcpy(var.data + static_cast<std::size_t>(lc) * var.ncomp, r, row);
      r += var.ncomp;
    }
  }
  for (const auto& var : dst.edgeVars()) {
    const std::size_t row = static_cast<std::size_t>(var.ncomp) * sizeof(double);
    for (const Index le : pat.recv_edges) {
      std::memcpy(var.data + static_cast<std::size_t>(le) * var.ncomp, r, row);
      r += var.ncomp;
    }
  }
}

void Communicator::exchange(std::vector<ExchangeList>& lists) {
  ensurePlan(lists);
  const std::size_t npat = decomp_->patterns.size();
  // Collective form of the packed transport: pack every pattern, then
  // unpack every pattern. The two phases are each parallelized across
  // patterns; the phase boundary is the "transfer".
#pragma omp parallel for schedule(dynamic)
  for (std::size_t p = 0; p < npat; ++p) packMessage(p);
  if (wire_latency_.count() > 0) {
    // All messages are in flight concurrently, so the collective round
    // stalls one wire-latency window before anything is consumable --
    // there is no interior work to run under it here.
    std::this_thread::sleep_for(wire_latency_);
  }
#pragma omp parallel for schedule(dynamic)
  for (std::size_t p = 0; p < npat; ++p) unpackMessage(p);
  // Keep the overlap protocol's sequence numbers in lockstep with the
  // collective rounds so the two forms can interleave between steps.
  for (std::size_t p = 0; p < npat; ++p) {
    PackedMessage& msg = *messages_[p];
    msg.posted.store(msg.posted.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    msg.consumed.store(msg.consumed.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  }
  for (auto& r : round_) ++r;
  stat_bytes_.fetch_add(round_bytes_, std::memory_order_relaxed);
  stat_messages_.fetch_add(round_msgs_, std::memory_order_relaxed);
  stat_exchanges_.fetch_add(1, std::memory_order_relaxed);
}

void Communicator::exchangeUnpacked(std::vector<ExchangeList>& lists) {
  ensurePlan(lists);  // shape validation + O(1) traffic totals
  const auto& patterns = decomp_->patterns;
  // Seed transport: element-wise copies straight from the sender's arrays
  // into the receiver's, kept as the ablation baseline for the packed path.
#pragma omp parallel for schedule(dynamic)
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    const ExchangePattern& pat = patterns[p];
    const ExchangeList& src = lists[pat.from];
    const ExchangeList& dst = lists[pat.to];
    for (std::size_t v = 0; v < src.cellVars().size(); ++v) {
      const auto& sv = src.cellVars()[v];
      const auto& dv = dst.cellVars()[v];
      for (std::size_t i = 0; i < pat.send_cells.size(); ++i) {
        const double* from = sv.data + static_cast<std::size_t>(pat.send_cells[i]) * sv.ncomp;
        double* to = dv.data + static_cast<std::size_t>(pat.recv_cells[i]) * dv.ncomp;
        for (int k = 0; k < sv.ncomp; ++k) to[k] = from[k];
      }
    }
    for (std::size_t v = 0; v < src.edgeVars().size(); ++v) {
      const auto& sv = src.edgeVars()[v];
      const auto& dv = dst.edgeVars()[v];
      for (std::size_t i = 0; i < pat.send_edges.size(); ++i) {
        const double* from = sv.data + static_cast<std::size_t>(pat.send_edges[i]) * sv.ncomp;
        double* to = dv.data + static_cast<std::size_t>(pat.recv_edges[i]) * dv.ncomp;
        for (int k = 0; k < sv.ncomp; ++k) to[k] = from[k];
      }
    }
  }
  if (wire_latency_.count() > 0) std::this_thread::sleep_for(wire_latency_);
  for (std::size_t p = 0; p < patterns.size(); ++p) {
    PackedMessage& msg = *messages_[p];
    msg.posted.store(msg.posted.load(std::memory_order_relaxed) + 1,
                     std::memory_order_relaxed);
    msg.consumed.store(msg.consumed.load(std::memory_order_relaxed) + 1,
                       std::memory_order_relaxed);
  }
  for (auto& r : round_) ++r;
  stat_bytes_.fetch_add(round_bytes_, std::memory_order_relaxed);
  stat_messages_.fetch_add(round_msgs_, std::memory_order_relaxed);
  stat_exchanges_.fetch_add(1, std::memory_order_relaxed);
}

void Communicator::post(Index rank) {
  if (!planned_) {
    throw std::logic_error("Communicator::post: plan() the lists first");
  }
  const std::uint64_t seq = ++round_[rank];
  for (const Index p : from_[static_cast<std::size_t>(rank)]) {
    PackedMessage& msg = *messages_[p];
    // Back-pressure: do not overwrite a message the receiver has not
    // consumed yet (it can be at most one round behind). Blocks on the
    // atomic's futex rather than spinning -- rank threads are typically
    // oversubscribed on the host cores.
    for (std::uint64_t c = msg.consumed.load(std::memory_order_acquire);
         c + 1 < seq; c = msg.consumed.load(std::memory_order_acquire)) {
      msg.consumed.wait(c, std::memory_order_acquire);
    }
    packMessage(p);
    if (wire_latency_.count() > 0) {
      msg.deliver_at = std::chrono::steady_clock::now() + wire_latency_;
    }
    msg.posted.store(seq, std::memory_order_release);
    msg.posted.notify_all();
  }
  stat_bytes_.fetch_add(rank_out_bytes_[rank], std::memory_order_relaxed);
  stat_messages_.fetch_add(rank_out_msgs_[rank], std::memory_order_relaxed);
  if (rank == 0) stat_exchanges_.fetch_add(1, std::memory_order_relaxed);
}

void Communicator::wait(Index rank) {
  const std::uint64_t seq = round_[rank];  // advanced by this round's post()
  for (const Index p : to_[static_cast<std::size_t>(rank)]) {
    PackedMessage& msg = *messages_[p];
    for (std::uint64_t got = msg.posted.load(std::memory_order_acquire);
         got < seq; got = msg.posted.load(std::memory_order_acquire)) {
      msg.posted.wait(got, std::memory_order_acquire);
    }
    if (wire_latency_.count() > 0) {
      // Sleep out whatever part of the wire latency the interior compute
      // did not already cover (the overlap win: usually none of it).
      std::this_thread::sleep_until(msg.deliver_at);
    }
    unpackMessage(p);
    msg.consumed.store(seq, std::memory_order_release);
    msg.consumed.notify_all();
  }
}

CommStats Communicator::stats() const {
  CommStats s;
  s.messages = stat_messages_.load(std::memory_order_relaxed);
  s.bytes = stat_bytes_.load(std::memory_order_relaxed);
  s.exchanges = stat_exchanges_.load(std::memory_order_relaxed);
  return s;
}

void Communicator::setWireLatency(double seconds) {
  wire_latency_ = std::chrono::duration_cast<std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(seconds < 0.0 ? 0.0 : seconds));
}

double Communicator::wireLatency() const {
  return std::chrono::duration<double>(wire_latency_).count();
}

void Communicator::resetStats() {
  stat_messages_.store(0, std::memory_order_relaxed);
  stat_bytes_.store(0, std::memory_order_relaxed);
  stat_exchanges_.store(0, std::memory_order_relaxed);
}

} // namespace grist::parallel
