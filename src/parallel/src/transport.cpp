#include "grist/parallel/transport.hpp"

namespace grist::parallel {

void InProcessTransport::allocate(const std::vector<std::int64_t>& pattern_doubles) {
  slots_.resize(pattern_doubles.size());
  for (std::size_t p = 0; p < pattern_doubles.size(); ++p) {
    if (!slots_[p]) slots_[p] = std::make_unique<Slot>();
    // resize() is a no-op for unchanged sizes, so a warm replan allocates
    // nothing; sequence words survive replans (split and collective rounds
    // stay interleavable across a shape change).
    slots_[p]->buffer.resize(static_cast<std::size_t>(pattern_doubles[p]));
  }
}

void InProcessTransport::waitSendSlot(std::size_t p, std::uint64_t seq) {
  Slot& s = *slots_[p];
  // Back-pressure: do not overwrite a message the receiver has not
  // consumed yet (it can be at most one round behind). Blocks on the
  // atomic's futex rather than spinning -- rank threads are typically
  // oversubscribed on the host cores.
  for (std::uint64_t c = s.consumed.load(std::memory_order_acquire);
       c + 1 < seq; c = s.consumed.load(std::memory_order_acquire)) {
    s.consumed.wait(c, std::memory_order_acquire);
  }
}

void InProcessTransport::publish(std::size_t p, std::uint64_t seq,
                                 std::int64_t deliver_at_ns) {
  Slot& s = *slots_[p];
  s.deliver_at_ns = deliver_at_ns;
  s.posted.store(seq, std::memory_order_release);
  s.posted.notify_all();
}

std::int64_t InProcessTransport::waitPosted(std::size_t p, std::uint64_t seq) {
  Slot& s = *slots_[p];
  for (std::uint64_t got = s.posted.load(std::memory_order_acquire);
       got < seq; got = s.posted.load(std::memory_order_acquire)) {
    s.posted.wait(got, std::memory_order_acquire);
  }
  return s.deliver_at_ns;
}

void InProcessTransport::consume(std::size_t p, std::uint64_t seq) {
  Slot& s = *slots_[p];
  s.consumed.store(seq, std::memory_order_release);
  s.consumed.notify_all();
}

void InProcessTransport::advanceRound(std::size_t p) {
  // Collective form: data already moved by the caller, nobody is blocked in
  // waitPosted/waitSendSlot (the collective is a full-stop round), so the
  // bumps need no ordering and no doorbell.
  Slot& s = *slots_[p];
  s.posted.store(s.posted.load(std::memory_order_relaxed) + 1,
                 std::memory_order_relaxed);
  s.consumed.store(s.consumed.load(std::memory_order_relaxed) + 1,
                   std::memory_order_relaxed);
}

void InProcessTransport::addTraffic(std::int64_t messages, std::int64_t bytes,
                                    std::int64_t exchanges) {
  stat_messages_.fetch_add(messages, std::memory_order_relaxed);
  stat_bytes_.fetch_add(bytes, std::memory_order_relaxed);
  stat_exchanges_.fetch_add(exchanges, std::memory_order_relaxed);
}

CommStats InProcessTransport::stats() const {
  CommStats s;
  s.messages = stat_messages_.load(std::memory_order_relaxed);
  s.bytes = stat_bytes_.load(std::memory_order_relaxed);
  s.exchanges = stat_exchanges_.load(std::memory_order_relaxed);
  return s;
}

void InProcessTransport::resetStats() {
  stat_messages_.store(0, std::memory_order_relaxed);
  stat_bytes_.store(0, std::memory_order_relaxed);
  stat_exchanges_.store(0, std::memory_order_relaxed);
}

} // namespace grist::parallel
