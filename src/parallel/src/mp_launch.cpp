#include "grist/parallel/mp_launch.hpp"

#include <sched.h>
#include <signal.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace grist::parallel {

std::string makeSegmentName() {
  const auto ns = std::chrono::steady_clock::now().time_since_epoch().count();
  return "/grist-mp-" + std::to_string(::getpid()) + "-" +
         std::to_string(static_cast<unsigned long long>(ns) % 0x1000000ull);
}

namespace {

void pinToCore(Index rank) {
  long ncores = ::sysconf(_SC_NPROCESSORS_ONLN);
  if (ncores < 1) ncores = 1;
  cpu_set_t set;
  CPU_ZERO(&set);
  CPU_SET(static_cast<int>(rank % static_cast<Index>(ncores)), &set);
  ::sched_setaffinity(0, sizeof(set), &set);  // best effort
}

} // namespace

std::vector<pid_t> spawnRanks(Index nranks, bool pin,
                              const std::function<std::vector<std::string>(Index)>& argv_for) {
  std::vector<pid_t> pids;
  pids.reserve(static_cast<std::size_t>(nranks));
  for (Index r = 0; r < nranks; ++r) {
    // Materialize the child's argv BEFORE fork: between fork and exec only
    // async-signal-safe calls are allowed (the parent is multithreaded),
    // and heap allocation is not one of them.
    const std::vector<std::string> args = argv_for(r);
    std::vector<char*> argv;
    argv.reserve(args.size() + 1);
    for (const std::string& a : args) argv.push_back(const_cast<char*>(a.c_str()));
    argv.push_back(nullptr);

    const pid_t pid = ::fork();
    if (pid < 0) {
      const int err = errno;
      for (const pid_t p : pids) ::kill(p, SIGKILL);
      for (const pid_t p : pids) ::waitpid(p, nullptr, 0);
      throw std::runtime_error(std::string("spawnRanks: fork: ") +
                               std::strerror(err));
    }
    if (pid == 0) {
      if (pin) pinToCore(r);
      ::execv("/proc/self/exe", argv.data());
      _exit(127);  // exec failed; async-signal-safe exit only
    }
    pids.push_back(pid);
  }
  return pids;
}

int waitRanks(const std::vector<pid_t>& pids, double kill_grace_s) {
  std::vector<bool> done(pids.size(), false);
  std::size_t remaining = pids.size();
  int first_fail = 0;
  bool terminated = false;
  bool killed = false;
  std::chrono::steady_clock::time_point fail_at{};

  while (remaining > 0) {
    bool progressed = false;
    for (std::size_t i = 0; i < pids.size(); ++i) {
      if (done[i]) continue;
      int status = 0;
      const pid_t w = ::waitpid(pids[i], &status, WNOHANG);
      if (w == 0) continue;
      done[i] = true;
      --remaining;
      progressed = true;
      int code = 1;
      if (w == pids[i]) {
        if (WIFEXITED(status)) {
          code = WEXITSTATUS(status);
        } else if (WIFSIGNALED(status)) {
          code = 128 + WTERMSIG(status);
        }
      }
      if (code != 0 && first_fail == 0) {
        first_fail = code;
        fail_at = std::chrono::steady_clock::now();
      }
    }
    if (first_fail != 0 && remaining > 0) {
      // Whole-run teardown: a dead rank leaves its peers blocked on shared
      // futexes; take them down rather than hang the run.
      if (!terminated) {
        for (std::size_t i = 0; i < pids.size(); ++i) {
          if (!done[i]) ::kill(pids[i], SIGTERM);
        }
        terminated = true;
      } else if (!killed &&
                 std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                               fail_at)
                         .count() > kill_grace_s) {
        for (std::size_t i = 0; i < pids.size(); ++i) {
          if (!done[i]) ::kill(pids[i], SIGKILL);
        }
        killed = true;
      }
    }
    if (!progressed && remaining > 0) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
    }
  }
  return first_fail;
}

} // namespace grist::parallel
