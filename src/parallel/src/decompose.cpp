#include "grist/parallel/decompose.hpp"

#include <algorithm>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "grist/partition/partitioner.hpp"

namespace grist::parallel {
namespace {

using grid::HexMesh;

struct RankScratch {
  std::vector<Index> cells;             // local -> global
  std::vector<int> cell_ring;           // ring of each local cell
  std::vector<Index> edges;             // local -> global
  std::vector<Index> vertices;          // local -> global
  std::unordered_map<Index, Index> cell_l;  // global -> local
  std::unordered_map<Index, Index> edge_l;
  std::unordered_map<Index, Index> vtx_l;
};

// Gather owned cells + H halo rings for one rank, in ring-major order.
void gatherCells(const HexMesh& m, const std::vector<Index>& part, Index rank,
                 int halo_depth, RankScratch& s) {
  for (Index c = 0; c < m.ncells; ++c) {
    if (part[c] == rank) {
      s.cell_l.emplace(c, static_cast<Index>(s.cells.size()));
      s.cells.push_back(c);
      s.cell_ring.push_back(0);
    }
  }
  Index ring_begin = 0;
  for (int ring = 1; ring <= halo_depth; ++ring) {
    const Index ring_end = static_cast<Index>(s.cells.size());
    for (Index i = ring_begin; i < ring_end; ++i) {
      const Index c = s.cells[i];
      for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k) {
        const Index nb = m.cell_cells[k];
        if (s.cell_l.emplace(nb, static_cast<Index>(s.cells.size())).second) {
          s.cells.push_back(nb);
          s.cell_ring.push_back(ring);
        }
      }
    }
    ring_begin = ring_end;
  }
}

// Local edges: both adjacent cells local. Owned edges (rank owns
// edge_cell[0]) first, then the rest; both groups in global-id order so the
// layout is deterministic.
void gatherEdges(const HexMesh& m, const std::vector<Index>& part, Index rank,
                 RankScratch& s) {
  std::vector<Index> owned, other;
  for (const Index c : s.cells) {
    for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k) {
      const Index e = m.cell_edges[k];
      if (s.edge_l.count(e)) continue;
      if (!s.cell_l.count(m.edge_cell[e][0]) || !s.cell_l.count(m.edge_cell[e][1])) {
        continue;
      }
      s.edge_l.emplace(e, 0);  // placeholder; final ids assigned below
      (part[m.edge_cell[e][0]] == rank ? owned : other).push_back(e);
    }
  }
  std::sort(owned.begin(), owned.end());
  std::sort(other.begin(), other.end());
  s.edges.clear();
  s.edges.reserve(owned.size() + other.size());
  s.edge_l.clear();
  for (const Index e : owned) {
    s.edge_l.emplace(e, static_cast<Index>(s.edges.size()));
    s.edges.push_back(e);
  }
  for (const Index e : other) {
    s.edge_l.emplace(e, static_cast<Index>(s.edges.size()));
    s.edges.push_back(e);
  }
}

// Local vertices: referenced by any local edge. "Complete" vertices (all 3
// cells and all 3 edges local) first.
void gatherVertices(const HexMesh& m, RankScratch& s, Index& nvtx_complete) {
  std::vector<Index> complete, partial;
  std::unordered_map<Index, bool> seen;
  for (const Index e : s.edges) {
    for (const Index v : m.edge_vertex[e]) {
      if (!seen.emplace(v, true).second) continue;
      bool full = true;
      for (const Index c : m.vtx_cells[v]) full = full && s.cell_l.count(c) > 0;
      for (const Index ve : m.vtx_edges[v]) full = full && s.edge_l.count(ve) > 0;
      (full ? complete : partial).push_back(v);
    }
  }
  std::sort(complete.begin(), complete.end());
  std::sort(partial.begin(), partial.end());
  nvtx_complete = static_cast<Index>(complete.size());
  for (const Index v : complete) {
    s.vtx_l.emplace(v, static_cast<Index>(s.vertices.size()));
    s.vertices.push_back(v);
  }
  for (const Index v : partial) {
    s.vtx_l.emplace(v, static_cast<Index>(s.vertices.size()));
    s.vertices.push_back(v);
  }
}

Index lookupOr(const std::unordered_map<Index, Index>& map, Index key) {
  const auto it = map.find(key);
  return it == map.end() ? kInvalidIndex : it->second;
}

// Copy geometry + remapped connectivity into the rank's local HexMesh.
void buildLocalMesh(const HexMesh& m, const RankScratch& s, HexMesh& out) {
  out.level = m.level;
  out.radius = m.radius;
  out.ncells = static_cast<Index>(s.cells.size());
  out.nedges = static_cast<Index>(s.edges.size());
  out.nvertices = static_cast<Index>(s.vertices.size());

  out.cell_x.resize(out.ncells);
  out.cell_ll.resize(out.ncells);
  out.cell_area.resize(out.ncells);
  out.cell_offset.assign(out.ncells + 1, 0);
  for (Index lc = 0; lc < out.ncells; ++lc) {
    const Index c = s.cells[lc];
    out.cell_x[lc] = m.cell_x[c];
    out.cell_ll[lc] = m.cell_ll[c];
    out.cell_area[lc] = m.cell_area[c];
    out.cell_offset[lc + 1] =
        out.cell_offset[lc] + (m.cell_offset[c + 1] - m.cell_offset[c]);
  }
  const Index ring = out.cell_offset[out.ncells];
  out.cell_edges.resize(ring);
  out.cell_edge_sign.resize(ring);
  out.cell_vertices.resize(ring);
  out.cell_cells.resize(ring);
  for (Index lc = 0; lc < out.ncells; ++lc) {
    const Index c = s.cells[lc];
    Index w = out.cell_offset[lc];
    for (Index k = m.cell_offset[c]; k < m.cell_offset[c + 1]; ++k, ++w) {
      out.cell_edges[w] = lookupOr(s.edge_l, m.cell_edges[k]);
      out.cell_edge_sign[w] = m.cell_edge_sign[k];
      out.cell_vertices[w] = lookupOr(s.vtx_l, m.cell_vertices[k]);
      out.cell_cells[w] = lookupOr(s.cell_l, m.cell_cells[k]);
    }
  }

  out.edge_cell.resize(out.nedges);
  out.edge_vertex.resize(out.nedges);
  out.edge_x.resize(out.nedges);
  out.edge_ll.resize(out.nedges);
  out.edge_de.resize(out.nedges);
  out.edge_le.resize(out.nedges);
  out.edge_normal.resize(out.nedges);
  out.edge_tangent.resize(out.nedges);
  for (Index le = 0; le < out.nedges; ++le) {
    const Index e = s.edges[le];
    out.edge_cell[le] = {lookupOr(s.cell_l, m.edge_cell[e][0]),
                         lookupOr(s.cell_l, m.edge_cell[e][1])};
    out.edge_vertex[le] = {lookupOr(s.vtx_l, m.edge_vertex[e][0]),
                           lookupOr(s.vtx_l, m.edge_vertex[e][1])};
    out.edge_x[le] = m.edge_x[e];
    out.edge_ll[le] = m.edge_ll[e];
    out.edge_de[le] = m.edge_de[e];
    out.edge_le[le] = m.edge_le[e];
    out.edge_normal[le] = m.edge_normal[e];
    out.edge_tangent[le] = m.edge_tangent[e];
  }

  out.vtx_x.resize(out.nvertices);
  out.vtx_area.resize(out.nvertices);
  out.vtx_edges.resize(out.nvertices);
  out.vtx_edge_sign.resize(out.nvertices);
  out.vtx_cells.resize(out.nvertices);
  out.vtx_kite_area.resize(out.nvertices);
  for (Index lv = 0; lv < out.nvertices; ++lv) {
    const Index v = s.vertices[lv];
    out.vtx_x[lv] = m.vtx_x[v];
    out.vtx_area[lv] = m.vtx_area[v];
    out.vtx_edge_sign[lv] = m.vtx_edge_sign[v];
    out.vtx_kite_area[lv] = m.vtx_kite_area[v];
    for (int k = 0; k < 3; ++k) {
      out.vtx_edges[lv][k] = lookupOr(s.edge_l, m.vtx_edges[v][k]);
      out.vtx_cells[lv][k] = lookupOr(s.cell_l, m.vtx_cells[v][k]);
    }
  }
}

} // namespace

Decomposition decompose(const HexMesh& mesh, const std::vector<Index>& part,
                        int halo_depth) {
  if (static_cast<Index>(part.size()) != mesh.ncells) {
    throw std::invalid_argument("decompose: partition size mismatch");
  }
  if (halo_depth < 1) throw std::invalid_argument("decompose: halo_depth < 1");
  Index nranks = 0;
  for (const Index p : part) nranks = std::max(nranks, p + 1);

  Decomposition d;
  d.nranks = nranks;
  d.halo_depth = halo_depth;
  d.cell_part = part;
  d.domains.resize(nranks);

  std::vector<RankScratch> scratch(nranks);
#pragma omp parallel for schedule(dynamic)
  for (Index r = 0; r < nranks; ++r) {
    RankScratch& s = scratch[r];
    gatherCells(mesh, part, r, halo_depth, s);
    gatherEdges(mesh, part, r, s);
    LocalDomain& dom = d.domains[r];
    dom.rank = r;
    gatherVertices(mesh, s, dom.nvtx_complete);
    buildLocalMesh(mesh, s, dom.mesh);
    dom.cell_global = s.cells;
    dom.edge_global = s.edges;
    dom.vtx_global = s.vertices;
    dom.ncells_owned = 0;
    dom.ncells_inner1 = 0;
    for (const int ring : s.cell_ring) {
      if (ring == 0) ++dom.ncells_owned;
      if (ring <= 1) ++dom.ncells_inner1;
    }
    dom.nedges_owned = 0;
    for (const Index e : s.edges) {
      if (part[mesh.edge_cell[e][0]] == r) ++dom.nedges_owned;
    }
  }

  // ---- exchange patterns (ordered pairs, deterministic order) ----
  std::map<std::pair<Index, Index>, ExchangePattern> patterns;
  for (Index r = 0; r < nranks; ++r) {
    const RankScratch& s = scratch[r];
    // Halo cells received by r.
    for (Index lc = d.domains[r].ncells_owned; lc < static_cast<Index>(s.cells.size());
         ++lc) {
      const Index g = s.cells[lc];
      const Index owner = part[g];
      auto& pat = patterns[{owner, r}];
      pat.from = owner;
      pat.to = r;
      pat.send_cells.push_back(scratch[owner].cell_l.at(g));
      pat.recv_cells.push_back(lc);
    }
    // Non-owned edges received by r.
    for (Index le = d.domains[r].nedges_owned; le < static_cast<Index>(s.edges.size());
         ++le) {
      const Index g = s.edges[le];
      const Index owner = part[mesh.edge_cell[g][0]];
      auto& pat = patterns[{owner, r}];
      pat.from = owner;
      pat.to = r;
      pat.send_edges.push_back(scratch[owner].edge_l.at(g));
      pat.recv_edges.push_back(le);
    }
  }
  d.patterns.reserve(patterns.size());
  for (auto& [key, pat] : patterns) d.patterns.push_back(std::move(pat));

  // Per-pattern send sizes + per-rank pattern index lists, precomputed here
  // so the communicator's traffic accounting and its post()/wait() halves
  // never rescan the send maps.
  d.patterns_from.resize(nranks);
  d.patterns_to.resize(nranks);
  for (std::size_t p = 0; p < d.patterns.size(); ++p) {
    ExchangePattern& pat = d.patterns[p];
    pat.nsend_cells = static_cast<Index>(pat.send_cells.size());
    pat.nsend_edges = static_cast<Index>(pat.send_edges.size());
    d.patterns_from[pat.from].push_back(static_cast<Index>(p));
    d.patterns_to[pat.to].push_back(static_cast<Index>(p));
  }

  // Boundary/interior split of the owned entities: an owned entity is
  // boundary iff some neighbor receives its value (it appears in a send
  // map). Ascending order keeps the banded update sweeps deterministic.
  for (Index r = 0; r < nranks; ++r) {
    LocalDomain& dom = d.domains[r];
    std::vector<char> cell_bnd(dom.ncells_owned, 0);
    std::vector<char> edge_bnd(dom.nedges_owned, 0);
    for (const Index p : d.patterns_from[r]) {
      for (const Index lc : d.patterns[p].send_cells) cell_bnd[lc] = 1;
      for (const Index le : d.patterns[p].send_edges) edge_bnd[le] = 1;
    }
    for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
      (cell_bnd[lc] ? dom.boundary_cells : dom.interior_cells).push_back(lc);
    }
    for (Index le = 0; le < dom.nedges_owned; ++le) {
      (edge_bnd[le] ? dom.boundary_edges : dom.interior_edges).push_back(le);
    }
  }
  return d;
}

Decomposition decompose(const HexMesh& mesh, Index nranks, int halo_depth) {
  return decompose(mesh, partition::Partitioner::partition(mesh, nranks), halo_depth);
}

} // namespace grist::parallel
