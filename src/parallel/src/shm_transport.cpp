#include "grist/parallel/shm_transport.hpp"

#include <climits>
#include <stdexcept>

namespace grist::parallel {

namespace {

constexpr std::size_t kAlign = 64;

std::size_t alignUp(std::size_t n) { return (n + kAlign - 1) & ~(kAlign - 1); }

/// Wrap-safe "a is before b" on truncated 32-bit sequence numbers.
bool seqBefore(std::uint32_t a, std::uint32_t b) {
  return static_cast<std::int32_t>(a - b) < 0;
}

} // namespace

ShmTransport::ShmTransport(std::string segment_name, Index nranks, Index local_rank)
    : seg_name_(std::move(segment_name)), nranks_(nranks), local_rank_(local_rank) {
  if (nranks_ <= 0 || local_rank_ < 0 || local_rank_ >= nranks_) {
    throw std::invalid_argument("ShmTransport: rank " + std::to_string(local_rank_) +
                                " out of range for " + std::to_string(nranks_) +
                                " ranks");
  }
  // Handshake segment: fixed size given nranks, so it can exist before any
  // message sizes are known (planLocal's cross-process shape validation
  // runs through it).
  const std::size_t hs_bytes =
      alignUp(sizeof(Header)) + static_cast<std::size_t>(nranks_) * kShapeSlotBytes;
  if (local_rank_ == 0) {
    hs_region_ = ShmRegion::create(seg_name_ + "-hs", hs_bytes);
    hdr_ = static_cast<Header*>(hs_region_.payload());
    hdr_->nranks = nranks_;  // rest of the zero-filled header is ready as-is
    hs_region_.markReady();
  } else {
    hs_region_ = ShmRegion::attach(seg_name_ + "-hs", hs_bytes);
    hdr_ = static_cast<Header*>(hs_region_.payload());
    if (hdr_->nranks != nranks_) {
      throw std::runtime_error(
          "ShmTransport: segment " + seg_name_ + " was created for " +
          std::to_string(hdr_->nranks) + " ranks by pid " +
          std::to_string(hs_region_.creatorPid()) + ", this process expects " +
          std::to_string(nranks_));
    }
  }
  shapes_ = static_cast<std::uint8_t*>(hs_region_.payload()) + alignUp(sizeof(Header));
}

void ShmTransport::allocate(const std::vector<std::int64_t>& pattern_doubles) {
  if (data_region_.valid()) {
    if (pattern_doubles != sizes_) {
      throw std::runtime_error(
          "ShmTransport: the shared data segment is sized at first plan; "
          "re-planning with different message sizes is not supported");
    }
    barrier();  // collective contract: every allocate() is a rendezvous
    return;
  }
  std::size_t off = alignUp(pattern_doubles.size() * sizeof(Channel));
  std::vector<std::size_t> buf_off(pattern_doubles.size());
  for (std::size_t p = 0; p < pattern_doubles.size(); ++p) {
    buf_off[p] = off;
    off = alignUp(off + static_cast<std::size_t>(pattern_doubles[p]) * sizeof(double));
  }
  if (local_rank_ == 0) {
    data_region_ = ShmRegion::create(seg_name_, off);
    data_region_.markReady();  // zero-filled channels ARE the initial state
  } else {
    data_region_ = ShmRegion::attach(seg_name_, off);
  }
  auto* base = static_cast<std::uint8_t*>(data_region_.payload());
  channels_ = reinterpret_cast<Channel*>(base);
  bufs_.resize(pattern_doubles.size());
  for (std::size_t p = 0; p < pattern_doubles.size(); ++p) {
    bufs_[p] = reinterpret_cast<double*>(base + buf_off[p]);
  }
  sizes_ = pattern_doubles;
  // Nobody may post until every rank is mapped (a slow attacher must not
  // miss a doorbell rung before its mapping exists).
  barrier();
}

void ShmTransport::waitSendSlot(std::size_t p, std::uint64_t seq) {
  Channel& ch = channels_[p];
  const std::uint32_t want = static_cast<std::uint32_t>(seq - 1);
  for (std::uint32_t c = ch.consumed.load(std::memory_order_acquire);
       seqBefore(c, want); c = ch.consumed.load(std::memory_order_acquire)) {
    futexWait(&ch.consumed, c);
  }
}

void ShmTransport::publish(std::size_t p, std::uint64_t seq,
                           std::int64_t deliver_at_ns) {
  Channel& ch = channels_[p];
  ch.deliver_at_ns = deliver_at_ns;
  ch.posted.store(static_cast<std::uint32_t>(seq), std::memory_order_release);
  futexWake(&ch.posted, INT_MAX);
}

std::int64_t ShmTransport::waitPosted(std::size_t p, std::uint64_t seq) {
  Channel& ch = channels_[p];
  const std::uint32_t want = static_cast<std::uint32_t>(seq);
  for (std::uint32_t got = ch.posted.load(std::memory_order_acquire);
       seqBefore(got, want); got = ch.posted.load(std::memory_order_acquire)) {
    futexWait(&ch.posted, got);
  }
  return ch.deliver_at_ns;
}

void ShmTransport::consume(std::size_t p, std::uint64_t seq) {
  Channel& ch = channels_[p];
  ch.consumed.store(static_cast<std::uint32_t>(seq), std::memory_order_release);
  futexWake(&ch.consumed, INT_MAX);
}

void ShmTransport::advanceRound(std::size_t) {
  // The collective exchange forms need every rank's arrays in one address
  // space; the Communicator rejects them in local mode before getting here.
  throw std::logic_error("ShmTransport: no collective rounds across processes");
}

void ShmTransport::addTraffic(std::int64_t messages, std::int64_t bytes,
                              std::int64_t exchanges) {
  hdr_->messages.fetch_add(messages, std::memory_order_relaxed);
  hdr_->bytes.fetch_add(bytes, std::memory_order_relaxed);
  hdr_->exchanges.fetch_add(exchanges, std::memory_order_relaxed);
}

CommStats ShmTransport::stats() const {
  CommStats s;
  s.messages = hdr_->messages.load(std::memory_order_relaxed);
  s.bytes = hdr_->bytes.load(std::memory_order_relaxed);
  s.exchanges = hdr_->exchanges.load(std::memory_order_relaxed);
  return s;
}

void ShmTransport::resetStats() {
  hdr_->messages.store(0, std::memory_order_relaxed);
  hdr_->bytes.store(0, std::memory_order_relaxed);
  hdr_->exchanges.store(0, std::memory_order_relaxed);
}

void ShmTransport::barrier() {
  // Sense-reversing futex barrier in the shared header. The last arriver
  // resets the count and bumps the generation; everyone else waits for the
  // generation to move (in slices, so a killed peer surfaces as a test
  // timeout instead of an unbounded hang).
  Header& h = *hdr_;
  const std::uint32_t gen = h.barrier_gen.load(std::memory_order_acquire);
  if (h.barrier_arrived.fetch_add(1, std::memory_order_acq_rel) + 1 ==
      static_cast<std::uint32_t>(nranks_)) {
    h.barrier_arrived.store(0, std::memory_order_relaxed);
    h.barrier_gen.store(gen + 1, std::memory_order_release);
    futexWake(&h.barrier_gen, INT_MAX);
  } else {
    while (h.barrier_gen.load(std::memory_order_acquire) == gen) {
      futexWait(&h.barrier_gen, gen, 0.05);
    }
  }
}

std::uint8_t* ShmTransport::shapeSlot(Index rank) {
  return shapes_ + static_cast<std::size_t>(rank) * kShapeSlotBytes;
}

void ShmTransport::unlinkSegments(const std::string& segment_name) {
  ShmRegion::unlink(segment_name);
  ShmRegion::unlink(segment_name + "-hs");
}

} // namespace grist::parallel
