#include "grist/parallel/shm_region.hpp"

#include <fcntl.h>
#include <linux/futex.h>
#include <signal.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <sys/syscall.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <climits>
#include <cstring>
#include <stdexcept>
#include <thread>

namespace grist::parallel {

namespace {

constexpr std::uint32_t kMagic = 0x47525354;  // "GRST"
constexpr std::uint32_t kStateEmpty = 0;
constexpr std::uint32_t kStatePartial = 1;
constexpr std::uint32_t kStateReady = 2;

/// The fixed header at offset 0 of every region. Backed by ftruncate'd
/// (zero-filled) pages; std::atomic<uint32_t> over zeroed memory is a valid
/// value representation of 0 on every ABI we target (asserted below).
struct RegionHeader {
  std::uint32_t magic;
  std::atomic<std::uint32_t> state;
  std::int32_t creator_pid;
  std::uint32_t reserved;
  std::uint64_t bytes;  // header + payload
  char pad[64 - 24];
};
static_assert(sizeof(RegionHeader) == ShmRegion::kHeaderBytes);
static_assert(std::atomic<std::uint32_t>::is_always_lock_free,
              "cross-process futex words must be address-free");

RegionHeader* header(void* map) { return static_cast<RegionHeader*>(map); }

[[noreturn]] void throwErrno(const std::string& what) {
  throw std::runtime_error(what + ": " + std::strerror(errno));
}

bool pidAlive(std::int32_t pid) {
  if (pid <= 0) return false;
  return ::kill(pid, 0) == 0 || errno != ESRCH;
}

void* mapFd(int fd, std::size_t bytes) {
  void* map = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (map == MAP_FAILED) throwErrno("ShmRegion: mmap");
  return map;
}

} // namespace

bool futexWait(const std::atomic<std::uint32_t>* word, std::uint32_t expected,
               double timeout_s) {
  timespec ts;
  timespec* tsp = nullptr;
  if (timeout_s > 0.0) {
    ts.tv_sec = static_cast<time_t>(timeout_s);
    ts.tv_nsec = static_cast<long>((timeout_s - static_cast<double>(ts.tv_sec)) * 1e9);
    tsp = &ts;
  }
  // FUTEX_WAIT (deliberately not FUTEX_WAIT_PRIVATE): the word lives in a
  // MAP_SHARED segment and the waker may be another process.
  const long rc = ::syscall(SYS_futex, reinterpret_cast<const void*>(word),
                            FUTEX_WAIT, expected, tsp, nullptr, 0);
  if (rc == -1 && errno == ETIMEDOUT) return false;
  return true;  // woken, value changed (EAGAIN), or EINTR -- caller re-checks
}

void futexWake(const std::atomic<std::uint32_t>* word, int n) {
  ::syscall(SYS_futex, reinterpret_cast<const void*>(word), FUTEX_WAKE, n,
            nullptr, nullptr, 0);
}

ShmRegion::ShmRegion(ShmRegion&& o) noexcept
    : name_(std::move(o.name_)), map_(o.map_), bytes_(o.bytes_), created_(o.created_) {
  o.map_ = nullptr;
  o.bytes_ = 0;
}

ShmRegion& ShmRegion::operator=(ShmRegion&& o) noexcept {
  if (this != &o) {
    this->~ShmRegion();
    new (this) ShmRegion(std::move(o));
  }
  return *this;
}

ShmRegion::~ShmRegion() {
  if (map_ != nullptr) ::munmap(map_, bytes_);
  map_ = nullptr;
}

ShmRegion ShmRegion::create(const std::string& name, std::size_t payload_bytes) {
  const std::size_t bytes = kHeaderBytes + payload_bytes;
  for (int attempt = 0; attempt < 16; ++attempt) {
    int fd = ::shm_open(name.c_str(), O_CREAT | O_EXCL | O_RDWR, 0600);
    if (fd >= 0) {
      if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
        ::close(fd);
        unlink(name);
        throwErrno("ShmRegion: ftruncate " + name);
      }
      void* map = mapFd(fd, bytes);
      ::close(fd);
      RegionHeader* h = header(map);
      h->magic = kMagic;
      h->creator_pid = static_cast<std::int32_t>(::getpid());
      h->bytes = bytes;
      h->state.store(kStatePartial, std::memory_order_release);
      ShmRegion r;
      r.name_ = name;
      r.map_ = map;
      r.bytes_ = bytes;
      r.created_ = true;
      return r;
    }
    if (errno != EEXIST) throwErrno("ShmRegion: shm_open " + name);

    // The name is taken. Attach just the header and decide whether it is a
    // live concurrent run (error) or a leftover from a killed one (reclaim).
    fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd < 0) continue;  // unlinked between our two shm_opens; retry create
    struct stat st{};
    if (::fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) < kHeaderBytes) {
      // Creator died between shm_open and ftruncate (or is still between
      // them). Give it a grace period, then treat as stale.
      ::close(fd);
      std::this_thread::sleep_for(std::chrono::milliseconds(20 * (attempt + 1)));
      fd = ::shm_open(name.c_str(), O_RDWR, 0600);
      if (fd < 0) continue;
      if (::fstat(fd, &st) != 0 || static_cast<std::size_t>(st.st_size) < kHeaderBytes) {
        ::close(fd);
        unlink(name);
        continue;
      }
    }
    void* map = mapFd(fd, kHeaderBytes);
    ::close(fd);
    const RegionHeader* h = header(map);
    const std::uint32_t magic = h->magic;
    const std::int32_t pid = h->creator_pid;
    ::munmap(map, kHeaderBytes);
    if (magic == kMagic && pidAlive(pid)) {
      throw std::runtime_error("ShmRegion: segment " + name +
                               " is owned by live pid " + std::to_string(pid) +
                               " (concurrent run?)");
    }
    // Stale (creator dead, or garbage that was never ours): reclaim.
    unlink(name);
  }
  throw std::runtime_error("ShmRegion: could not claim " + name +
                           " (create/reclaim loop exhausted)");
}

ShmRegion ShmRegion::attach(const std::string& name, std::size_t payload_bytes,
                            double timeout_s) {
  const std::size_t bytes = kHeaderBytes + payload_bytes;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::duration_cast<std::chrono::steady_clock::duration>(
                            std::chrono::duration<double>(timeout_s));
  int fd = -1;
  for (;;) {
    fd = ::shm_open(name.c_str(), O_RDWR, 0600);
    if (fd >= 0) {
      struct stat st{};
      if (::fstat(fd, &st) == 0 && static_cast<std::size_t>(st.st_size) >= bytes) break;
      ::close(fd);
      fd = -1;
    } else if (errno != ENOENT) {
      throwErrno("ShmRegion: shm_open " + name);
    }
    if (std::chrono::steady_clock::now() >= deadline) {
      throw std::runtime_error("ShmRegion: timed out waiting for " + name);
    }
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  void* map = mapFd(fd, bytes);
  ::close(fd);
  RegionHeader* h = header(map);
  // Wait for the creator to finish payload initialization.
  for (std::uint32_t s = h->state.load(std::memory_order_acquire); s != kStateReady;
       s = h->state.load(std::memory_order_acquire)) {
    const double left = std::chrono::duration<double>(
                            deadline - std::chrono::steady_clock::now())
                            .count();
    if (left <= 0.0) {
      ::munmap(map, bytes);
      throw std::runtime_error("ShmRegion: " + name + " never became ready");
    }
    futexWait(&h->state, s, left < 0.05 ? left : 0.05);
  }
  if (h->magic != kMagic || h->bytes != bytes) {
    ::munmap(map, bytes);
    throw std::runtime_error("ShmRegion: " + name + " has an unexpected layout");
  }
  ShmRegion r;
  r.name_ = name;
  r.map_ = map;
  r.bytes_ = bytes;
  r.created_ = false;
  return r;
}

void ShmRegion::markReady() {
  RegionHeader* h = header(map_);
  h->state.store(kStateReady, std::memory_order_release);
  futexWake(&h->state, INT_MAX);
}

void* ShmRegion::payload() const {
  return static_cast<char*>(map_) + kHeaderBytes;
}

std::int32_t ShmRegion::creatorPid() const { return header(map_)->creator_pid; }

void ShmRegion::unlink(const std::string& name) {
  if (::shm_unlink(name.c_str()) != 0 && errno != ENOENT) {
    // Teardown path: report loudly enough for tests without aborting a run.
    // (EACCES here would mean another uid owns the name.)
  }
  errno = 0;
}

} // namespace grist::parallel
