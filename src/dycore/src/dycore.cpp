#include "grist/dycore/dycore.hpp"

#include <algorithm>
#include <stdexcept>
#include <string>

#include "grist/backend/simd.hpp"
#include "grist/common/timer.hpp"
#include "grist/common/workspace.hpp"
#include "grist/dycore/kernels.hpp"

namespace grist::dycore {

using parallel::Field;

namespace {

Bounds fullBounds(const grid::HexMesh& mesh) {
  return Bounds{mesh.ncells, mesh.ncells, mesh.nedges, mesh.nvertices};
}

} // namespace

Dycore::Dycore(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
               DycoreConfig config)
    : Dycore(mesh, trsk, config, fullBounds(mesh)) {}

Dycore::Dycore(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
               DycoreConfig config, Bounds bounds)
    : mesh_(mesh), trsk_(trsk), config_(config), bounds_(bounds) {
  if (config_.nlev < 2) throw std::invalid_argument("Dycore: nlev < 2");
  if (config_.dt <= 0) throw std::invalid_argument("Dycore: dt <= 0");
  const int nlev = config_.nlev;

  // Scratch fields, grouped BY MESH ENTITY. Keep additions inside the
  // matching block: every field is size-checked against its entity count
  // below, so a field allocated under the wrong group fails construction
  // instead of silently aliasing out-of-range rows.
  // -- cell fields (ncells x nlev) --
  div_flux_ = Field(mesh.ncells, nlev);
  ke_ = Field(mesh.ncells, nlev);
  alpha_ = Field(mesh.ncells, nlev);
  p_ = Field(mesh.ncells, nlev);
  exner_ = Field(mesh.ncells, nlev);
  pi_mid_ = Field(mesh.ncells, nlev);
  div_u_ = Field(mesh.ncells, nlev);
  thetam_tend_ = Field(mesh.ncells, nlev);
  delp_tend_ = Field(mesh.ncells, nlev);
  delp0_ = Field(mesh.ncells, nlev);
  thetam0_ = Field(mesh.ncells, nlev);
  // -- edge fields (nedges x nlev) --
  flux_ = Field(mesh.nedges, nlev);
  uflux_ = Field(mesh.nedges, nlev);
  u_tend_ = Field(mesh.nedges, nlev);
  u0_ = Field(mesh.nedges, nlev);
  acc_flux_ = Field(mesh.nedges, nlev);
  // -- vertex fields (nvertices x nlev) --
  vor_ = Field(mesh.nvertices, nlev);
  qv_ = Field(mesh.nvertices, nlev);

  const auto expect = [nlev](const Field& f, Index nentity, const char* name) {
    if (f.entities() != nentity || f.components() != nlev) {
      throw std::logic_error(std::string("Dycore: mis-sized scratch field ") +
                             name);
    }
  };
  expect(div_flux_, mesh.ncells, "div_flux");
  expect(ke_, mesh.ncells, "ke");
  expect(alpha_, mesh.ncells, "alpha");
  expect(p_, mesh.ncells, "p");
  expect(exner_, mesh.ncells, "exner");
  expect(pi_mid_, mesh.ncells, "pi_mid");
  expect(div_u_, mesh.ncells, "div_u");
  expect(thetam_tend_, mesh.ncells, "thetam_tend");
  expect(delp_tend_, mesh.ncells, "delp_tend");
  expect(delp0_, mesh.ncells, "delp0");
  expect(thetam0_, mesh.ncells, "thetam0");
  expect(flux_, mesh.nedges, "flux");
  expect(uflux_, mesh.nedges, "uflux");
  expect(u_tend_, mesh.nedges, "u_tend");
  expect(u0_, mesh.nedges, "u0");
  expect(acc_flux_, mesh.nedges, "acc_flux");
  expect(vor_, mesh.nvertices, "vor");
  expect(qv_, mesh.nvertices, "qv");
}

void Dycore::resetAccumulatedFlux() {
  acc_flux_.fill(0.0);
  acc_steps_ = 0;
}

void Dycore::restoreAccumulatedFlux(const parallel::Field& flux, int steps) {
  if (flux.entities() != acc_flux_.entities() ||
      flux.components() != acc_flux_.components()) {
    throw std::invalid_argument("Dycore::restoreAccumulatedFlux: shape mismatch");
  }
  if (steps < 0) {
    throw std::invalid_argument("Dycore::restoreAccumulatedFlux: negative steps");
  }
  std::copy(flux.data(), flux.data() + flux.size(), acc_flux_.data());
  acc_steps_ = steps;
}

void Dycore::setBands(Bands bands) {
  const auto validate = [](const std::vector<Index>& boundary,
                           const std::vector<Index>& interior, Index n,
                           const char* what) {
    if (static_cast<Index>(boundary.size() + interior.size()) != n) {
      throw std::invalid_argument(std::string("Dycore::setBands: ") + what +
                                  " bands do not cover the prognostic range");
    }
    std::vector<char> seen(static_cast<std::size_t>(n), 0);
    for (const std::vector<Index>* band : {&boundary, &interior}) {
      for (const Index i : *band) {
        if (i < 0 || i >= n || seen[static_cast<std::size_t>(i)]) {
          throw std::invalid_argument(std::string("Dycore::setBands: ") + what +
                                      " bands are not a partition");
        }
        seen[static_cast<std::size_t>(i)] = 1;
      }
    }
  };
  validate(bands.boundary_cells, bands.interior_cells, bounds_.cells_prog,
           "cell");
  validate(bands.boundary_edges, bands.interior_edges, bounds_.edges_prog,
           "edge");
  bands_ = std::move(bands);
  has_bands_ = true;
}

void Dycore::step(State& state, const ExchangeFn& exchange) {
  const ScopedTimer timer("dycore");
  if (config_.ns == precision::NsMode::kDouble) {
    stepImpl<double>(state, exchange, nullptr);
  } else {
    stepImpl<float>(state, exchange, nullptr);
  }
}

void Dycore::step(State& state, const OverlapHooks& hooks) {
  if (!has_bands_) {
    throw std::logic_error("Dycore::step(overlap): setBands() first");
  }
  if (!hooks.post || !hooks.wait) {
    throw std::invalid_argument("Dycore::step(overlap): both hooks required");
  }
  const ScopedTimer timer("dycore");
  if (config_.ns == precision::NsMode::kDouble) {
    stepImpl<double>(state, {}, &hooks);
  } else {
    stepImpl<float>(state, {}, &hooks);
  }
}

// The tendency step is organized as FIVE fused single-sweep kernels (one
// per entity class + tendencies) instead of the former ~12 field sweeps.
// Each fused kernel reproduces the unfused sequence's arithmetic order
// element-for-element, so this restructuring is bit-exact (see
// tests/dycore/test_fused_kernels.cpp); the win is memory traffic --
// connectivity/geometry streamed once, outputs written once.
template <typename NS>
void Dycore::computeTendencies(const State& state) {
  const int nlev = config_.nlev;
  namespace k = kernels;
  namespace simd = backend::simd;

  // Runtime Host-vs-Simd routing: every SIMD tier is bitwise-identical to
  // the Host instantiation (tests/backend/test_simd.cpp), so the choice is
  // purely about speed -- config_.use_simd pins the Host path for the
  // benchmark baseline, GRIST_SIMD=0 disables routing process-wide, and
  // the table itself picks the best tier cpuid allows.
  if (config_.use_simd && simd::enabled()) {
    const simd::KernelTable& tb = simd::table();
    constexpr int si = simd::kNsIndex<NS>;
    tb.compute_rrr[si](bounds_.cells_diag, nlev, config_.ptop,
                       state.delp.data(), state.theta.data(), state.phi.data(),
                       alpha_.data(), p_.data(), exner_.data(), pi_mid_.data());
    tb.fused_edge_fluxes[si](mesh_, mesh_.nedges, nlev, state.delp.data(),
                             state.u.data(), flux_.data(), uflux_.data());
    tb.fused_cell_diagnostics[si](mesh_, bounds_.cells_diag, nlev,
                                  flux_.data(), uflux_.data(), state.u.data(),
                                  div_flux_.data(), div_u_.data(), ke_.data());
    tb.fused_vertex_diagnostics[si](mesh_, bounds_.vertices_diag, nlev,
                                    state.u.data(), state.delp.data(),
                                    constants::kOmega, vor_.data(), qv_.data());
    tb.fused_scalar_tendencies[si](
        mesh_, bounds_.cells_prog, nlev, flux_.data(), state.theta.data(),
        state.delp.data(), div_flux_.data(), config_.diff_coef / config_.dt,
        delp_tend_.data(), thetam_tend_.data());
    tb.fused_momentum_tendency[si](
        mesh_, trsk_, bounds_.edges_prog, nlev, ke_.data(), qv_.data(),
        flux_.data(), state.phi.data(), alpha_.data(), p_.data(),
        div_u_.data(), vor_.data(), config_.div_damp / config_.dt,
        config_.diff_coef / config_.dt, u_tend_.data());
    return;
  }

  // Thermodynamic diagnostics (compute_rrr) on the diagnostic cell band.
  k::computeRrr<NS>(bounds_.cells_diag, nlev, config_.ptop, state.delp.data(),
                    state.theta.data(), state.phi.data(), alpha_.data(), p_.data(),
                    exner_.data(), pi_mid_.data());

  // Fused edge sweep: mass flux + plain velocity flux from one pass over
  // ALL local edges (both cells of a local edge are always local).
  k::fusedEdgeFluxes<NS>(mesh_, mesh_.nedges, nlev, state.delp.data(),
                         state.u.data(), flux_.data(), uflux_.data());

  // Fused cell-neighbor sweep: div(flux), div(uflux), kinetic energy.
  k::fusedCellDiagnostics<NS>(mesh_, bounds_.cells_diag, nlev, flux_.data(),
                              uflux_.data(), state.u.data(), div_flux_.data(),
                              div_u_.data(), ke_.data());

  // Fused vertex sweep: vorticity + mass-weighted potential vorticity.
  k::fusedVertexDiagnostics<NS>(mesh_, bounds_.vertices_diag, nlev,
                                state.u.data(), state.delp.data(),
                                constants::kOmega, vor_.data(), qv_.data());

  // Fused cell-tendency sweep: delp_tend = -div(flux) and the mass-weighted
  // theta tendency (advection + delp * nu * del2 diffusion).
  k::fusedScalarTendencies<NS>(mesh_, bounds_.cells_prog, nlev, flux_.data(),
                               state.theta.data(), state.delp.data(),
                               div_flux_.data(), config_.diff_coef / config_.dt,
                               delp_tend_.data(), thetam_tend_.data());

  // Fused edge-tendency sweep: -grad(ke) + Coriolis + pressure gradient
  // (hard-double inside) + del2 damping; u_tend_ written exactly once.
  k::fusedMomentumTendency<NS>(mesh_, trsk_, bounds_.edges_prog, nlev,
                               ke_.data(), qv_.data(), flux_.data(),
                               state.phi.data(), alpha_.data(), p_.data(),
                               div_u_.data(), vor_.data(),
                               config_.div_damp / config_.dt,
                               config_.diff_coef / config_.dt, u_tend_.data());
}

template <typename NS>
void Dycore::stepImpl(State& state, const ExchangeFn& exchange,
                      const OverlapHooks* hooks) {
  const int nlev = config_.nlev;

  // Save step-start prognostics for the Runge-Kutta combinations.
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < mesh_.ncells; ++c) {
    for (int kk = 0; kk < nlev; ++kk) {
      delp0_(c, kk) = state.delp(c, kk);
      thetam0_(c, kk) = state.delp(c, kk) * state.theta(c, kk);
    }
  }
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < mesh_.nedges; ++e) {
    for (int kk = 0; kk < nlev; ++kk) u0_(e, kk) = state.u(e, kk);
  }

  // Prognostic update sweeps, callable either contiguously (cells ==
  // nullptr: the lockstep schedule) or on a band list (the overlapped
  // schedule). Per-entity arithmetic is identical either way, and entities
  // are independent, so both schedules produce bitwise-identical states.
  const auto updateCells = [&](const Index* cells, Index n, double dts) {
#pragma omp parallel for schedule(static)
    for (Index i = 0; i < n; ++i) {
      const Index c = cells ? cells[i] : i;
      for (int kk = 0; kk < nlev; ++kk) {
        double new_delp = delp0_(c, kk) + dts * delp_tend_(c, kk);
        const double new_thetam = thetam0_(c, kk) + dts * thetam_tend_(c, kk);
        // Positivity backstop: a Lagrangian layer drained past 10% of its
        // step-start mass is runaway divergence (the vertical remap
        // restores such columns on its cadence); clamp the mass and carry
        // theta through unchanged. Never triggers in healthy flow.
        const double floor = 0.1 * delp0_(c, kk);
        if (new_delp < floor) {
          new_delp = floor;
          state.delp(c, kk) = new_delp;
          state.theta(c, kk) = thetam0_(c, kk) / delp0_(c, kk);
          continue;
        }
        state.delp(c, kk) = new_delp;
        state.theta(c, kk) = new_thetam / new_delp;
      }
    }
  };
  const auto updateEdges = [&](const Index* edges, Index n, double dts) {
#pragma omp parallel for schedule(static)
    for (Index i = 0; i < n; ++i) {
      const Index e = edges ? edges[i] : i;
      for (int kk = 0; kk < nlev; ++kk) {
        state.u(e, kk) = u0_(e, kk) + dts * u_tend_(e, kk);
      }
    }
  };

  // Wicker-Skamarock RK3: dt/3, dt/2, dt, each stage restarting from S^n.
  const double stage_dt[3] = {config_.dt / 3.0, config_.dt / 2.0, config_.dt};
  for (int stage = 0; stage < 3; ++stage) {
    computeTendencies<NS>(state);
    const double dts = stage_dt[stage];
    if (hooks) {
      // Overlapped: boundary band first, post the halo messages, compute
      // the interior while they are in flight, then consume the halos
      // (the next stage's tendencies read them).
      updateCells(bands_.boundary_cells.data(),
                  static_cast<Index>(bands_.boundary_cells.size()), dts);
      updateEdges(bands_.boundary_edges.data(),
                  static_cast<Index>(bands_.boundary_edges.size()), dts);
      hooks->post();
      updateCells(bands_.interior_cells.data(),
                  static_cast<Index>(bands_.interior_cells.size()), dts);
      updateEdges(bands_.interior_edges.data(),
                  static_cast<Index>(bands_.interior_edges.size()), dts);
      hooks->wait();
    } else {
      updateCells(nullptr, bounds_.cells_prog, dts);
      updateEdges(nullptr, bounds_.edges_prog, dts);
      if (exchange) exchange(state);
    }
  }

  // Vertically implicit acoustic adjustment of (w, phi); pressure is
  // recomputed for the updated delp/theta in full double precision. The
  // column solve reads no halos, so the overlapped schedule posts the
  // boundary columns' results and solves the interior columns while the
  // messages are in flight.
  if (hooks) {
    const Index* bcells = bands_.boundary_cells.data();
    const Index nb = static_cast<Index>(bands_.boundary_cells.size());
    const Index* icells = bands_.interior_cells.data();
    const Index ni = static_cast<Index>(bands_.interior_cells.size());
    kernels::computeRrrBand<double>(bcells, nb, nlev, config_.ptop,
                                    state.delp.data(), state.theta.data(),
                                    state.phi.data(), alpha_.data(), p_.data(),
                                    exner_.data(), pi_mid_.data());
    kernels::vertImplicitSolverBand(bcells, nb, nlev, config_.dt, config_.ptop,
                                    state.delp.data(), state.theta.data(),
                                    p_.data(), state.w.data(), state.phi.data(),
                                    config_.w_damp_tau);
    hooks->post();
    kernels::computeRrrBand<double>(icells, ni, nlev, config_.ptop,
                                    state.delp.data(), state.theta.data(),
                                    state.phi.data(), alpha_.data(), p_.data(),
                                    exner_.data(), pi_mid_.data());
    kernels::vertImplicitSolverBand(icells, ni, nlev, config_.dt, config_.ptop,
                                    state.delp.data(), state.theta.data(),
                                    p_.data(), state.w.data(), state.phi.data(),
                                    config_.w_damp_tau);
    hooks->wait();
  } else if (config_.use_simd && backend::simd::enabled()) {
    // Lockstep schedule through the SIMD table (contiguous prefix only --
    // the band lists above stay on the Host drivers). The solver entry is
    // scalar in every tier; it rides the table for uniform routing.
    const backend::simd::KernelTable& tb = backend::simd::table();
    tb.compute_rrr[0](bounds_.cells_prog, nlev, config_.ptop,
                      state.delp.data(), state.theta.data(), state.phi.data(),
                      alpha_.data(), p_.data(), exner_.data(), pi_mid_.data());
    tb.vert_implicit_solver[0](bounds_.cells_prog, nlev, config_.dt,
                               config_.ptop, state.delp.data(),
                               state.theta.data(), p_.data(), state.w.data(),
                               state.phi.data(), config_.w_damp_tau);
    if (exchange) exchange(state);
  } else {
    kernels::computeRrr<double>(bounds_.cells_prog, nlev, config_.ptop,
                                state.delp.data(), state.theta.data(),
                                state.phi.data(), alpha_.data(), p_.data(),
                                exner_.data(), pi_mid_.data());
    kernels::vertImplicitSolver(bounds_.cells_prog, nlev, config_.dt,
                                config_.ptop, state.delp.data(),
                                state.theta.data(), p_.data(), state.w.data(),
                                state.phi.data(), config_.w_damp_tau);
    if (exchange) exchange(state);
  }

  // Accumulate the (double-precision) mass flux driving tracer transport.
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < mesh_.nedges; ++e) {
    for (int kk = 0; kk < nlev; ++kk) acc_flux_(e, kk) += flux_(e, kk);
  }
  ++acc_steps_;
}

std::vector<double> Dycore::relativeVorticity(const State& state) const {
  std::vector<double> vor(static_cast<std::size_t>(bounds_.vertices_diag) *
                          config_.nlev);
  kernels::vorticityAtVertex<double>(mesh_, bounds_.vertices_diag, config_.nlev,
                                     state.u.data(), vor.data());
  return vor;
}

// ---------------------------------------------------------------------------
// Non-template (always double) kernels.
// ---------------------------------------------------------------------------
namespace kernels {

void calcPressureGradient(const HexMesh& m, Index nedges, int nlev,
                          const double* phi, const double* alpha, const double* p,
                          const double* pi_mid, double* tend_u) {
  (void)pi_mid;  // retained in the signature for the coupler-facing kernel set
  // Full sigma/mass-coordinate PGF along model levels:
  //   -grad(phi_mid) - alpha * grad(p).
  // Over terrain-following levels these are two large canceling terms
  // (the classic PGF-error source); the residual is measured by
  // TopographyTest.PgfErrorFlowStaysSmall. (Subtracting pi from p here
  // would drop the alpha*grad(pi) piece that balances grad(phi) over
  // orography.)
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    HostCtx ctx;
    bk::calcPressureGradient(ctx, e, mv, nlev, hostView(phi), hostView(alpha),
                             hostView(p), hostMut(tend_u));
  }
}

// Fully implicit column solve for the (w, phi) acoustic coupling:
//   phi^{+}(k) = phi^{n}(k) + dt g w^{+}(k)               (interfaces)
//   w^{+}(k)   = w^{n}(k) + dt g [ (p^{+}_k - p^{+}_{k-1}) / dpi_k - 1 ]
// with p linearized about the current state,
//   p^{+}_j = p_j - (gamma p_j / dphi_j)(dphi^{+}_j - dphi_j),
// which yields a symmetric-positive tridiagonal system in w^{+} at interior
// interfaces (w = 0 at the top and the surface). delta-pi at interface k is
// the mean of the adjacent layer masses. This kernel carries the gravity
// and acoustic terms the paper pins to double precision.
namespace {

// Shared implementation: `cells == nullptr` solves the contiguous range
// [0, ncols); otherwise the listed columns (boundary/interior band).
void vertImplicitSolverImpl(const Index* cells, Index ncols, int nlev,
                            double dt, double ptop, const double* delp,
                            const double* theta, const double* p, double* w,
                            double* phi, double w_damp_tau) {
  using common::Workspace;
#pragma omp parallel
  {
    // All per-column temporaries come from the thread's persistent arena:
    // after the first call has warmed it up, the parallel region performs
    // zero heap allocations (asserted by test_fused_kernels.cpp).
    Workspace& ws = Workspace::threadLocal();
    ws.reserve(Workspace::bytesFor<double>(nlev) * 5 +
               Workspace::bytesFor<double>(nlev + 1));
#pragma omp for schedule(static)
    for (Index i = 0; i < ncols; ++i) {
      const Index c = cells ? cells[i] : i;
      const Workspace::Frame frame(ws);
      const int n = nlev - 1;
      grist::backend::kernels::VertSolveScratch scratch;
      scratch.comp = ws.get<double>(nlev);
      scratch.lower = ws.get<double>(n);
      scratch.diag = ws.get<double>(n);
      scratch.upper = ws.get<double>(n);
      scratch.rhs = ws.get<double>(n);
      scratch.wnew = ws.get<double>(nlev + 1);
      HostCtx ctx;
      bk::vertImplicitColumn<grist::backend::HostBackend>(
          ctx, c, nlev, dt, ptop, hostView(delp), hostView(theta), hostView(p),
          hostMut(w), hostMut(phi), w_damp_tau, scratch);
    }
  } // omp parallel
}

} // namespace

void vertImplicitSolver(Index ncells, int nlev, double dt, double ptop,
                        const double* delp, const double* theta, const double* p,
                        double* w, double* phi, double w_damp_tau) {
  vertImplicitSolverImpl(nullptr, ncells, nlev, dt, ptop, delp, theta, p, w,
                         phi, w_damp_tau);
}

void vertImplicitSolverBand(const Index* cells, Index nband, int nlev,
                            double dt, double ptop, const double* delp,
                            const double* theta, const double* p, double* w,
                            double* phi, double w_damp_tau) {
  vertImplicitSolverImpl(cells, nband, nlev, dt, ptop, delp, theta, p, w, phi,
                         w_damp_tau);
}

} // namespace kernels

// Explicit instantiations of the step for both precisions.
template void Dycore::stepImpl<double>(State&, const ExchangeFn&,
                                       const OverlapHooks*);
template void Dycore::stepImpl<float>(State&, const ExchangeFn&,
                                      const OverlapHooks*);

} // namespace grist::dycore
