#include "grist/dycore/diagnostics.hpp"

#include <cmath>
#include <stdexcept>

#include "grist/common/math.hpp"

namespace grist::dycore {

using constants::kGravity;

double totalDryMass(const grid::HexMesh& mesh, const State& state) {
  double total = 0.0;
#pragma omp parallel for reduction(+ : total) schedule(static)
  for (Index c = 0; c < mesh.ncells; ++c) {
    double column = 0.0;
    for (int k = 0; k < state.nlev; ++k) column += state.delp(c, k);
    total += column * mesh.cell_area[c];
  }
  return total / kGravity;
}

double totalTracerMass(const grid::HexMesh& mesh, const State& state, int tracer) {
  const auto& q = state.tracers.at(tracer);
  double total = 0.0;
#pragma omp parallel for reduction(+ : total) schedule(static)
  for (Index c = 0; c < mesh.ncells; ++c) {
    double column = 0.0;
    for (int k = 0; k < state.nlev; ++k) column += state.delp(c, k) * q(c, k);
    total += column * mesh.cell_area[c];
  }
  return total / kGravity;
}

double totalThetaMass(const grid::HexMesh& mesh, const State& state) {
  double total = 0.0;
#pragma omp parallel for reduction(+ : total) schedule(static)
  for (Index c = 0; c < mesh.ncells; ++c) {
    double column = 0.0;
    for (int k = 0; k < state.nlev; ++k) column += state.delp(c, k) * state.theta(c, k);
    total += column * mesh.cell_area[c];
  }
  return total / kGravity;
}

double totalKineticEnergy(const grid::HexMesh& mesh, const State& state) {
  double total = 0.0;
#pragma omp parallel for reduction(+ : total) schedule(static)
  for (Index e = 0; e < mesh.nedges; ++e) {
    const Index c1 = mesh.edge_cell[e][0];
    const Index c2 = mesh.edge_cell[e][1];
    const double weight = 0.5 * mesh.edge_le[e] * mesh.edge_de[e];
    for (int k = 0; k < state.nlev; ++k) {
      const double delp_e = 0.5 * (state.delp(c1, k) + state.delp(c2, k));
      total += weight * delp_e * state.u(e, k) * state.u(e, k);
    }
  }
  return total / kGravity;
}

FieldExtrema tracerExtrema(const State& state, int tracer) {
  const auto& q = state.tracers.at(tracer);
  FieldExtrema x{q(0, 0), q(0, 0)};
  for (Index c = 0; c < q.entities(); ++c) {
    for (int k = 0; k < q.components(); ++k) {
      x.min = std::min(x.min, q(c, k));
      x.max = std::max(x.max, q(c, k));
    }
  }
  return x;
}

double patternCorrelation(const grid::HexMesh& mesh, const std::vector<double>& a,
                          const std::vector<double>& b) {
  return patternCorrelation(mesh, a, b, std::vector<bool>(mesh.ncells, true));
}

double patternCorrelation(const grid::HexMesh& mesh, const std::vector<double>& a,
                          const std::vector<double>& b,
                          const std::vector<bool>& mask) {
  if (a.size() != b.size() || static_cast<Index>(a.size()) != mesh.ncells ||
      mask.size() != a.size()) {
    throw std::invalid_argument("patternCorrelation: size mismatch");
  }
  double wsum = 0, mean_a = 0, mean_b = 0;
  for (Index c = 0; c < mesh.ncells; ++c) {
    if (!mask[c]) continue;
    wsum += mesh.cell_area[c];
    mean_a += mesh.cell_area[c] * a[c];
    mean_b += mesh.cell_area[c] * b[c];
  }
  if (wsum == 0) return 0.0;
  mean_a /= wsum;
  mean_b /= wsum;
  double cov = 0, var_a = 0, var_b = 0;
  for (Index c = 0; c < mesh.ncells; ++c) {
    if (!mask[c]) continue;
    const double da = a[c] - mean_a;
    const double db = b[c] - mean_b;
    cov += mesh.cell_area[c] * da * db;
    var_a += mesh.cell_area[c] * da * da;
    var_b += mesh.cell_area[c] * db * db;
  }
  if (var_a == 0 || var_b == 0) return 0.0;
  return cov / std::sqrt(var_a * var_b);
}

} // namespace grist::dycore
