#include "grist/dycore/tracer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "grist/common/workspace.hpp"

namespace grist::dycore {

template <precision::NsReal NS>
void tracerTransportHoriFluxLimiter(const TracerTransportArgs& a, double* q) {
  if (a.mesh == nullptr || a.mean_flux == nullptr || a.delp_old == nullptr ||
      a.delp_new == nullptr) {
    throw std::invalid_argument("tracerTransport: null argument");
  }
  const grid::HexMesh& m = *a.mesh;
  const int nlev = a.nlev;
  const double dt = a.dt;

  // Work arrays from the calling thread's arena: first call per tracer
  // size grows it once, every later call (one per tracer per transport
  // step) is allocation-free.
  using common::Workspace;
  Workspace& ws = Workspace::threadLocal();
  const std::size_t en = static_cast<std::size_t>(m.nedges) * nlev;
  const std::size_t cn = static_cast<std::size_t>(m.ncells) * nlev;
  ws.reserve(2 * Workspace::bytesFor<double>(en) +
             3 * Workspace::bytesFor<double>(cn));
  const Workspace::Frame frame(ws);
  double* flux_low = ws.get<double>(en);
  double* flux_anti = ws.get<double>(en);
  double* q_td = ws.get<double>(cn);
  double* rp = ws.get<double>(cn);
  double* rm = ws.get<double>(cn);

  // 1) Low-order (upwind) and antidiffusive (centered - upwind) fluxes on
  //    all local edges.
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < m.nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    for (int k = 0; k < nlev; ++k) {
      const double f = a.mean_flux[e * nlev + k];
      const NS q1 = static_cast<NS>(q[c1 * nlev + k]);
      const NS q2 = static_cast<NS>(q[c2 * nlev + k]);
      const double low = f * static_cast<double>(f >= 0 ? q1 : q2);
      const double high = f * static_cast<double>(NS(0.5) * (q1 + q2));
      flux_low[e * nlev + k] = low;
      flux_anti[e * nlev + k] = high - low;
    }
  }

  // 2) Transported-diffused solution from low-order fluxes (monotone).
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < a.ncells_prog; ++c) {
    for (int k = 0; k < nlev; ++k) {
      double div = 0.0;
      for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
        div += m.cell_edge_sign[j] * flux_low[m.cell_edges[j] * nlev + k];
      }
      const double mass_old = a.delp_old[c * nlev + k] * q[c * nlev + k];
      q_td[c * nlev + k] =
          (mass_old - dt * div / m.cell_area[c]) / a.delp_new[c * nlev + k];
    }
  }

  // 3) Zalesak limiter: per-cell allowed extrema from the old and
  //    transported-diffused values of the cell and its neighbors.
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < a.ncells_prog; ++c) {
    for (int k = 0; k < nlev; ++k) {
      double qmax = std::max(q[c * nlev + k], q_td[c * nlev + k]);
      double qmin = std::min(q[c * nlev + k], q_td[c * nlev + k]);
      for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
        const Index nb = m.cell_cells[j];
        qmax = std::max({qmax, q[nb * nlev + k], q_td[nb * nlev + k]});
        qmin = std::min({qmin, q[nb * nlev + k], q_td[nb * nlev + k]});
      }
      // Sum of antidiffusive fluxes into / out of the cell.
      double p_in = 0.0, p_out = 0.0;
      for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
        const double fa =
            m.cell_edge_sign[j] * flux_anti[m.cell_edges[j] * nlev + k];
        if (fa < 0) {
          p_in -= fa;  // influx
        } else {
          p_out += fa;
        }
      }
      const double scale = dt / (m.cell_area[c] * a.delp_new[c * nlev + k]);
      const double room_up = (qmax - q_td[c * nlev + k]) / scale;
      const double room_dn = (q_td[c * nlev + k] - qmin) / scale;
      rp[c * nlev + k] = p_in > 0 ? std::min(1.0, room_up / p_in) : 0.0;
      rm[c * nlev + k] = p_out > 0 ? std::min(1.0, room_dn / p_out) : 0.0;
    }
  }

  // 4) Apply limited antidiffusive fluxes. Edges on the rank boundary may
  //    touch halo cells whose R factors were not computed; the caller's
  //    halo exchange of rp/rm is folded in by computing R on the full
  //    diagnostic band (ncells_prog covers it in single-domain runs; rank
  //    runs pass owned+ring1 as ncells_prog for limiter symmetry).
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < a.ncells_prog; ++c) {
    for (int k = 0; k < nlev; ++k) {
      double corr = 0.0;
      for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
        const Index e = m.cell_edges[j];
        const Index c1 = m.edge_cell[e][0];
        const Index c2 = m.edge_cell[e][1];
        const double fa = flux_anti[e * nlev + k];
        // Limiter factor: receiving side uses R+, giving side R-.
        double limit;
        if (fa >= 0) {  // antidiffusive flux c1 -> c2
          limit = std::min(rp[c2 * nlev + k], rm[c1 * nlev + k]);
        } else {
          limit = std::min(rp[c1 * nlev + k], rm[c2 * nlev + k]);
        }
        corr += m.cell_edge_sign[j] * limit * fa;
      }
      q[c * nlev + k] =
          q_td[c * nlev + k] - dt * corr / (m.cell_area[c] * a.delp_new[c * nlev + k]);
    }
  }
}

template void tracerTransportHoriFluxLimiter<double>(const TracerTransportArgs&,
                                                     double*);
template void tracerTransportHoriFluxLimiter<float>(const TracerTransportArgs&,
                                                    double*);

void tracerTransport(const TracerTransportArgs& args, precision::NsMode ns,
                     double* q) {
  if (ns == precision::NsMode::kDouble) {
    tracerTransportHoriFluxLimiter<double>(args, q);
  } else {
    tracerTransportHoriFluxLimiter<float>(args, q);
  }
}

} // namespace grist::dycore
