#include "grist/dycore/tracer.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "grist/backend/kernels.hpp"
#include "grist/backend/simd.hpp"
#include "grist/common/workspace.hpp"

namespace grist::dycore {

namespace bk = grist::backend::kernels;
using grist::backend::hostMut;
using grist::backend::hostView;
using grist::backend::makeHostMeshView;
using HostCtx = grist::backend::HostBackend::Context;

template <precision::NsReal NS>
void tracerTransportHoriFluxLimiter(const TracerTransportArgs& a, double* q) {
  if (a.mesh == nullptr || a.mean_flux == nullptr || a.delp_old == nullptr ||
      a.delp_new == nullptr) {
    throw std::invalid_argument("tracerTransport: null argument");
  }
  const grid::HexMesh& m = *a.mesh;
  const int nlev = a.nlev;
  const double dt = a.dt;

  // Work arrays from the calling thread's arena: first call per tracer
  // size grows it once, every later call (one per tracer per transport
  // step) is allocation-free.
  using common::Workspace;
  Workspace& ws = Workspace::threadLocal();
  const std::size_t en = static_cast<std::size_t>(m.nedges) * nlev;
  const std::size_t cn = static_cast<std::size_t>(m.ncells) * nlev;
  // The + 4 rows are headroom for the SIMD phases below: this thread's
  // arena doubles as their per-cell scratch source, and without the slack a
  // fully-consumed arena would make those per-iteration acquires overflow.
  ws.reserve(2 * Workspace::bytesFor<double>(en) +
             3 * Workspace::bytesFor<double>(cn) +
             4 * Workspace::bytesFor<double>(nlev));
  const Workspace::Frame frame(ws);
  double* flux_low = ws.get<double>(en);
  double* flux_anti = ws.get<double>(en);
  double* q_td = ws.get<double>(cn);
  double* rp = ws.get<double>(cn);
  double* rm = ws.get<double>(cn);

  // SIMD routing: identical arithmetic, vectorized k loops (all four
  // phases live behind one table entry).
  namespace simd = grist::backend::simd;
  if (a.use_simd && simd::enabled()) {
    simd::table().tracer_hori_flux_limiter[simd::kNsIndex<NS>](
        m, a.ncells_prog, nlev, dt, a.mean_flux, a.delp_old, a.delp_new, q,
        flux_low, flux_anti, q_td, rp, rm);
    return;
  }

  const auto mv = makeHostMeshView(m);

  // 1) Low-order (upwind) and antidiffusive (centered - upwind) fluxes on
  //    all local edges.
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < m.nedges; ++e) {
    HostCtx ctx;
    bk::tracerEdgeFluxes<NS>(ctx, e, mv, nlev, hostView(a.mean_flux),
                             hostView(q), hostMut(flux_low),
                             hostMut(flux_anti));
  }

  // 2) Transported-diffused solution from low-order fluxes (monotone).
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < a.ncells_prog; ++c) {
    HostCtx ctx;
    bk::tracerTransportedDiffused(ctx, c, mv, nlev, dt, hostView(flux_low),
                                  hostView(q), hostView(a.delp_old),
                                  hostView(a.delp_new), hostMut(q_td));
  }

  // 3) Zalesak limiter: per-cell allowed extrema from the old and
  //    transported-diffused values of the cell and its neighbors.
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < a.ncells_prog; ++c) {
    HostCtx ctx;
    bk::tracerLimiterFactors(ctx, c, mv, nlev, dt, hostView(q), hostView(q_td),
                             hostView(flux_anti), hostView(a.delp_new),
                             hostMut(rp), hostMut(rm));
  }

  // 4) Apply limited antidiffusive fluxes. Edges on the rank boundary may
  //    touch halo cells whose R factors were not computed; the caller's
  //    halo exchange of rp/rm is folded in by computing R on the full
  //    diagnostic band (ncells_prog covers it in single-domain runs; rank
  //    runs pass owned+ring1 as ncells_prog for limiter symmetry).
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < a.ncells_prog; ++c) {
    HostCtx ctx;
    bk::tracerApplyLimited(ctx, c, mv, nlev, dt, hostView(q_td), hostView(rp),
                           hostView(rm), hostView(flux_anti),
                           hostView(a.delp_new), hostMut(q));
  }
}

template void tracerTransportHoriFluxLimiter<double>(const TracerTransportArgs&,
                                                     double*);
template void tracerTransportHoriFluxLimiter<float>(const TracerTransportArgs&,
                                                    double*);

void tracerTransport(const TracerTransportArgs& args, precision::NsMode ns,
                     double* q) {
  if (ns == precision::NsMode::kDouble) {
    tracerTransportHoriFluxLimiter<double>(args, q);
  } else {
    tracerTransportHoriFluxLimiter<float>(args, q);
  }
}

} // namespace grist::dycore
