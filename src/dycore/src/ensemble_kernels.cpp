// Ensemble-runner-private kernels (see ensemble_kernels.hpp for the bitwise
// contract). This TU is compiled with AVX-512 flags when available and
// always with -ffp-contract=off: every floating-point expression below must
// evaluate per element exactly as the portable scalar code in
// backend/kernels.hpp and dycore.cpp does, so no FMA contraction and no
// value-changing reassociation are permitted. Only elementwise-independent
// dimensions (the vertical index k, the flat cell*k index, or the ensemble
// member lane) are vectorized; libm pow stays scalar per element.
#include "grist/dycore/ensemble_kernels.hpp"

#include <cmath>

#include "grist/common/math.hpp"
#include "grist/common/workspace.hpp"

namespace grist::dycore::ensemble_kernels {

using common::Workspace;
using constants::kCp;
using constants::kGravity;
using constants::kKappa;
using constants::kP0;
using constants::kRd;
using precision::NsMode;

namespace {

// alpha = NS(dphi)/NS(dp); p = kP0*pow(dp/double(NS(dphi))*kRd*theta/kP0,
// cp/cv). Same expressions, same order, as computeRrrColumn (minus the
// pi_mid accumulation and the Exner pow, whose outputs are dead here).
// The pow argument is staged through the p array so the divides vectorize
// over k and the libm calls run in one flat scalar pass.
template <precision::NsReal NS>
void rrrLiteImpl(Index ncells, int nlev, const double* delp, const double* theta,
                 const double* phi, double* alpha, double* p) {
  const double gamma = kCp / (kCp - kRd);  // cp/cv
#pragma omp parallel
  {
#pragma omp for schedule(static)
    for (Index c = 0; c < ncells; ++c) {
      const double* dp_row = delp + c * nlev;
      const double* th_row = theta + c * nlev;
      const double* phi_row = phi + c * (nlev + 1);
      double* a_row = alpha + c * nlev;
      double* p_row = p + c * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        const double dp = dp_row[k];
        const NS dphi = static_cast<NS>(phi_row[k] - phi_row[k + 1]);
        a_row[k] = static_cast<double>(dphi / static_cast<NS>(dp));
        const double rho = dp / static_cast<double>(dphi);
        p_row[k] = rho * kRd * th_row[k] / kP0;
      }
    }
    const Index total = ncells * nlev;
#pragma omp for schedule(static)
    for (Index i = 0; i < total; ++i) p[i] = kP0 * std::pow(p[i], gamma);
  }
}

} // namespace

void rrrLite(Index ncells, int nlev, const double* delp, const double* theta,
             const double* phi, double* alpha, double* p, NsMode ns) {
  if (ns == NsMode::kDouble) {
    rrrLiteImpl<double>(ncells, nlev, delp, theta, phi, alpha, p);
  } else {
    rrrLiteImpl<float>(ncells, nlev, delp, theta, phi, alpha, p);
  }
}

void rrrPOnly(Index ncells, int nlev, const double* delp, const double* theta,
              const double* phi, double* p) {
  // The pre-solver compute_rrr is always double (tb.compute_rrr[0]); only
  // its p output is read by the implicit solver.
  const double gamma = kCp / (kCp - kRd);
#pragma omp parallel
  {
#pragma omp for schedule(static)
    for (Index c = 0; c < ncells; ++c) {
      const double* dp_row = delp + c * nlev;
      const double* th_row = theta + c * nlev;
      const double* phi_row = phi + c * (nlev + 1);
      double* p_row = p + c * nlev;
#pragma omp simd
      for (int k = 0; k < nlev; ++k) {
        const double dp = dp_row[k];
        const double dphi = phi_row[k] - phi_row[k + 1];
        const double rho = dp / dphi;
        p_row[k] = rho * kRd * th_row[k] / kP0;
      }
    }
    const Index total = ncells * nlev;
#pragma omp for schedule(static)
    for (Index i = 0; i < total; ++i) p[i] = kP0 * std::pow(p[i], gamma);
  }
}

void saveCellStart(Index ncells, int nlev, const double* delp,
                   const double* theta, double* delp0, double* thetam0) {
  const Index total = ncells * nlev;
#pragma omp parallel for simd schedule(static)
  for (Index i = 0; i < total; ++i) {
    delp0[i] = delp[i];
    thetam0[i] = delp[i] * theta[i];
  }
}

void saveEdgeStart(Index nedges, int nlev, const double* u, double* u0) {
  const Index total = nedges * nlev;
#pragma omp parallel for simd schedule(static)
  for (Index i = 0; i < total; ++i) u0[i] = u[i];
}

void updateCells(Index ncells, int nlev, double dts, const double* delp0,
                 const double* thetam0, const double* delp_tend,
                 const double* thetam_tend, double* delp, double* theta) {
  // Positivity branch as a blend: both divides are computed, the discarded
  // lane's value is thrown away. thetam0/delp0 is always well defined
  // (delp0 > 0); the speculative nt/nd on a floored lane cannot trap.
  const Index total = ncells * nlev;
#pragma omp parallel for simd schedule(static)
  for (Index i = 0; i < total; ++i) {
    const double d0 = delp0[i];
    const double nd = d0 + dts * delp_tend[i];
    const double nt = thetam0[i] + dts * thetam_tend[i];
    const double floor_d = 0.1 * d0;
    const bool floored = nd < floor_d;
    delp[i] = floored ? floor_d : nd;
    theta[i] = floored ? thetam0[i] / d0 : nt / nd;
  }
}

void updateEdges(Index nedges, int nlev, double dts, const double* u0,
                 const double* u_tend, double* u) {
  const Index total = nedges * nlev;
#pragma omp parallel for simd schedule(static)
  for (Index i = 0; i < total; ++i) u[i] = u0[i] + dts * u_tend[i];
}

void accumulateFlux(Index nedges, int nlev, const double* flux, double* acc) {
  const Index total = nedges * nlev;
#pragma omp parallel for simd schedule(static)
  for (Index i = 0; i < total; ++i) acc[i] += flux[i];
}

void vertSolveMemberLanes(int nmembers, Index ncells, int nlev, double dt,
                          double ptop, const double* const* delp,
                          const double* const* theta, const double* const* p,
                          double* const* w, double* const* phi,
                          double w_damp_tau) {
  // Members in lane blocks of up to 8 (one zmm / two ymm of doubles). All
  // lane-major arrays are [k][lane]; expressions with k-offsets become flat
  // elementwise loops with stride-L offsets. Per-lane operation order is
  // exactly vertImplicitColumn's.
  constexpr int kMaxLanes = 8;
  const double gamma = kCp / (kCp - kRd);
  const double g = kGravity;
  const int n = nlev - 1;

  for (int m0 = 0; m0 < nmembers; m0 += kMaxLanes) {
    const int L = std::min(kMaxLanes, nmembers - m0);
    const double* const* dp_m = delp + m0;
    const double* const* th_m = theta + m0;
    const double* const* p_m = p + m0;
    double* const* w_m = w + m0;
    double* const* phi_m = phi + m0;

#pragma omp parallel
    {
      Workspace& ws = Workspace::threadLocal();
      const std::size_t row = Workspace::bytesFor<double>(nlev * kMaxLanes);
      const std::size_t irow = Workspace::bytesFor<double>((nlev + 1) * kMaxLanes);
      ws.reserve(3 * row + 3 * irow + 4 * row + irow +
                 Workspace::bytesFor<double>(kMaxLanes));
#pragma omp for schedule(static)
      for (Index c = 0; c < ncells; ++c) {
        Workspace::Frame frame(ws);
        double* dp_ln = ws.acquire<double>(nlev * L);
        double* p_ln = ws.acquire<double>(nlev * L);
        double* comp = ws.acquire<double>(nlev * L);
        double* phi_ln = ws.acquire<double>((nlev + 1) * L);
        double* w_ln = ws.acquire<double>((nlev + 1) * L);
        double* wnew = ws.acquire<double>((nlev + 1) * L);
        double* lower = ws.acquire<double>(n * L);
        double* diag = ws.acquire<double>(n * L);
        double* upper = ws.acquire<double>(n * L);
        double* rhs = ws.acquire<double>(n * L);
        double* theta0 = ws.acquire<double>(L);

        const Index cc = c * nlev;
        const Index ci = c * (nlev + 1);
        // Gather member columns into lane-major scratch.
        for (int k = 0; k < nlev; ++k) {
          for (int l = 0; l < L; ++l) {
            dp_ln[k * L + l] = dp_m[l][cc + k];
            p_ln[k * L + l] = p_m[l][cc + k];
          }
        }
        for (int k = 0; k <= nlev; ++k) {
          for (int l = 0; l < L; ++l) {
            phi_ln[k * L + l] = phi_m[l][ci + k];
            w_ln[k * L + l] = w_m[l][ci + k];
          }
        }
        for (int l = 0; l < L; ++l) theta0[l] = th_m[l][cc + 0];

        // comp[j] = gamma p_j / (phi_j - phi_{j+1}); flat over [k][lane].
#pragma omp simd
        for (int i = 0; i < nlev * L; ++i) {
          comp[i] = gamma * p_ln[i] / (phi_ln[i] - phi_ln[i + L]);
        }
        // Tridiagonal rows for interior interfaces k = 1..n; flat index
        // i = (k-1)*L + lane, so "level k" reads sit at i + L.
#pragma omp simd
        for (int i = 0; i < n * L; ++i) {
          const double dpi = 0.5 * (dp_ln[i] + dp_ln[i + L]);
          const double ck = dt * g / dpi;
          const double a = ck * dt * g;
          lower[i] = -a * comp[i];
          diag[i] = 1.0 + a * (comp[i + L] + comp[i]);
          upper[i] = -a * comp[i + L];
          rhs[i] = w_ln[i + L] + ck * (p_ln[i + L] - p_ln[i]) - dt * g;
        }
        // Thomas forward elimination: sequential in k, lane-parallel.
        for (int i = 1; i < n; ++i) {
#pragma omp simd
          for (int l = 0; l < L; ++l) {
            const double mm = lower[i * L + l] / diag[(i - 1) * L + l];
            diag[i * L + l] -= mm * upper[(i - 1) * L + l];
            rhs[i * L + l] -= mm * rhs[(i - 1) * L + l];
          }
        }
        for (int i = 0; i < (nlev + 1) * L; ++i) wnew[i] = 0.0;
        if (n > 0) {
#pragma omp simd
          for (int l = 0; l < L; ++l) {
            wnew[n * L + l] = rhs[(n - 1) * L + l] / diag[(n - 1) * L + l];
          }
          for (int i = n - 2; i >= 0; --i) {
#pragma omp simd
            for (int l = 0; l < L; ++l) {
              wnew[(i + 1) * L + l] =
                  (rhs[i * L + l] - upper[i * L + l] * wnew[(i + 2) * L + l]) /
                  diag[i * L + l];
            }
          }
        }
        if (w_damp_tau > 0) {
          // Rows k = 1..n of wnew, i.e. flat indices [L, nlev*L).
#pragma omp simd
          for (int i = L; i < nlev * L; ++i) {
            wnew[i] /= 1.0 + dt / w_damp_tau;
          }
        }
        // Inversion limiter (reads pre-update phi); wnew row k sits at
        // i + L for flat i = (k-1)*L + lane.
#pragma omp simd
        for (int i = 0; i < n * L; ++i) {
          const double room =
              0.25 * std::min(phi_ln[i] - phi_ln[i + L],
                              phi_ln[i + L] - phi_ln[i + 2 * L]);
          const double bound = room / (dt * g);
          double wk = wnew[i + L];
          wk = wk > bound ? bound : wk;
          wk = wk < -bound ? -bound : wk;
          wnew[i + L] = wk;
        }
        // Scatter w, update interior phi, re-attach the top interface.
        for (int k = 0; k <= nlev; ++k) {
          for (int l = 0; l < L; ++l) w_m[l][ci + k] = wnew[k * L + l];
        }
        for (int k = 1; k <= n; ++k) {
          for (int l = 0; l < L; ++l) {
            phi_m[l][ci + k] += dt * g * wnew[k * L + l];
          }
        }
        for (int l = 0; l < L; ++l) {
          const double pi_top_mid = ptop + 0.5 * dp_ln[l];
          const double alpha_top = kRd * theta0[l] *
                                   std::pow(pi_top_mid / kP0, kKappa) /
                                   pi_top_mid;
          phi_m[l][ci + 0] = phi_m[l][ci + 1] + alpha_top * dp_ln[l];
        }
      }
    }
  }
}

} // namespace grist::dycore::ensemble_kernels
