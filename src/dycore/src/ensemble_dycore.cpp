#include "grist/dycore/ensemble_dycore.hpp"

#include <stdexcept>

#include "grist/backend/simd.hpp"
#include "grist/common/timer.hpp"
#include "grist/dycore/ensemble_kernels.hpp"
#include "grist/dycore/kernels.hpp"

namespace grist::dycore {

using parallel::Field;
namespace ek = ensemble_kernels;

EnsembleDycore::EnsembleDycore(const grid::HexMesh& mesh,
                               const grid::TrskWeights& trsk,
                               DycoreConfig config, int nmembers)
    : mesh_(mesh), trsk_(trsk), config_(config), nmembers_(nmembers) {
  if (config_.nlev < 2) throw std::invalid_argument("EnsembleDycore: nlev < 2");
  if (config_.dt <= 0) throw std::invalid_argument("EnsembleDycore: dt <= 0");
  if (nmembers_ < 1) {
    throw std::invalid_argument("EnsembleDycore: nmembers < 1");
  }
  const int nlev = config_.nlev;

  div_flux_ = Field(mesh.ncells, nlev);
  ke_ = Field(mesh.ncells, nlev);
  alpha_ = Field(mesh.ncells, nlev);
  p_ = Field(mesh.ncells, nlev);
  div_u_ = Field(mesh.ncells, nlev);
  thetam_tend_ = Field(mesh.ncells, nlev);
  delp_tend_ = Field(mesh.ncells, nlev);
  delp0_ = Field(mesh.ncells, nlev);
  thetam0_ = Field(mesh.ncells, nlev);
  flux_ = Field(mesh.nedges, nlev);
  uflux_ = Field(mesh.nedges, nlev);
  u_tend_ = Field(mesh.nedges, nlev);
  u0_ = Field(mesh.nedges, nlev);
  vor_ = Field(mesh.nvertices, nlev);
  qv_ = Field(mesh.nvertices, nlev);

  acc_flux_.reserve(static_cast<std::size_t>(nmembers_));
  p_solve_.reserve(static_cast<std::size_t>(nmembers_));
  for (int m = 0; m < nmembers_; ++m) {
    acc_flux_.emplace_back(mesh.nedges, nlev);
    p_solve_.emplace_back(mesh.ncells, nlev);
  }
  const std::size_t mm = static_cast<std::size_t>(nmembers_);
  solve_p_.resize(mm);
  solve_w_.resize(mm);
  solve_phi_.resize(mm);
  solve_delp_.resize(mm);
  solve_theta_.resize(mm);
}

void EnsembleDycore::resetAccumulatedFlux() {
  for (Field& f : acc_flux_) f.fill(0.0);
  acc_steps_ = 0;
}

void EnsembleDycore::step(std::vector<State>& states) {
  if (static_cast<int>(states.size()) != nmembers_) {
    throw std::invalid_argument("EnsembleDycore::step: member count mismatch");
  }
  // Per-member pointer table (capacity fixed in the ctor; no allocation).
  static thread_local std::vector<State*> ptrs;
  ptrs.clear();
  for (State& s : states) ptrs.push_back(&s);
  step(ptrs.data());
}

void EnsembleDycore::step(State* const* states) {
  const ScopedTimer timer("ensemble.dycore");
  if (config_.ns == precision::NsMode::kDouble) {
    stepImpl<double>(states);
  } else {
    stepImpl<float>(states);
  }
}

// Dycore::computeTendencies minus the compute_rrr call: the five fused
// sweeps route through the same SIMD table entries (or Host kernels) with
// the same arguments, so their outputs are bitwise the solo outputs. The
// thermodynamic diagnostics come from rrrLite (alpha/p only) instead.
template <typename NS>
void EnsembleDycore::computeTendencies(const State& state) {
  const int nlev = config_.nlev;
  namespace k = kernels;
  namespace simd = backend::simd;

  ek::rrrLite(mesh_.ncells, nlev, state.delp.data(), state.theta.data(),
              state.phi.data(), alpha_.data(), p_.data(), config_.ns);

  if (config_.use_simd && simd::enabled()) {
    const simd::KernelTable& tb = simd::table();
    constexpr int si = simd::kNsIndex<NS>;
    tb.fused_edge_fluxes[si](mesh_, mesh_.nedges, nlev, state.delp.data(),
                             state.u.data(), flux_.data(), uflux_.data());
    tb.fused_cell_diagnostics[si](mesh_, mesh_.ncells, nlev, flux_.data(),
                                  uflux_.data(), state.u.data(),
                                  div_flux_.data(), div_u_.data(), ke_.data());
    tb.fused_vertex_diagnostics[si](mesh_, mesh_.nvertices, nlev,
                                    state.u.data(), state.delp.data(),
                                    constants::kOmega, vor_.data(), qv_.data());
    tb.fused_scalar_tendencies[si](
        mesh_, mesh_.ncells, nlev, flux_.data(), state.theta.data(),
        state.delp.data(), div_flux_.data(), config_.diff_coef / config_.dt,
        delp_tend_.data(), thetam_tend_.data());
    tb.fused_momentum_tendency[si](
        mesh_, trsk_, mesh_.nedges, nlev, ke_.data(), qv_.data(), flux_.data(),
        state.phi.data(), alpha_.data(), p_.data(), div_u_.data(), vor_.data(),
        config_.div_damp / config_.dt, config_.diff_coef / config_.dt,
        u_tend_.data());
    return;
  }

  k::fusedEdgeFluxes<NS>(mesh_, mesh_.nedges, nlev, state.delp.data(),
                         state.u.data(), flux_.data(), uflux_.data());
  k::fusedCellDiagnostics<NS>(mesh_, mesh_.ncells, nlev, flux_.data(),
                              uflux_.data(), state.u.data(), div_flux_.data(),
                              div_u_.data(), ke_.data());
  k::fusedVertexDiagnostics<NS>(mesh_, mesh_.nvertices, nlev, state.u.data(),
                                state.delp.data(), constants::kOmega,
                                vor_.data(), qv_.data());
  k::fusedScalarTendencies<NS>(mesh_, mesh_.ncells, nlev, flux_.data(),
                               state.theta.data(), state.delp.data(),
                               div_flux_.data(), config_.diff_coef / config_.dt,
                               delp_tend_.data(), thetam_tend_.data());
  k::fusedMomentumTendency<NS>(mesh_, trsk_, mesh_.nedges, nlev, ke_.data(),
                               qv_.data(), flux_.data(), state.phi.data(),
                               alpha_.data(), p_.data(), div_u_.data(),
                               vor_.data(), config_.div_damp / config_.dt,
                               config_.diff_coef / config_.dt, u_tend_.data());
}

template <typename NS>
void EnsembleDycore::stepImpl(State* const* states) {
  const int nlev = config_.nlev;

  // Phase 1, member-sequential over shared scratch: RK3 explicit update,
  // pre-solver pressure into the member's p_solve_, mass-flux accumulation.
  // (flux_ is live only within the member's iteration; moving the
  // accumulation before the solve is state-invisible because the implicit
  // solve does not touch the mass flux.)
  const double stage_dt[3] = {config_.dt / 3.0, config_.dt / 2.0, config_.dt};
  for (int m = 0; m < nmembers_; ++m) {
    State& state = *states[m];
    ek::saveCellStart(mesh_.ncells, nlev, state.delp.data(),
                      state.theta.data(), delp0_.data(), thetam0_.data());
    ek::saveEdgeStart(mesh_.nedges, nlev, state.u.data(), u0_.data());
    for (int stage = 0; stage < 3; ++stage) {
      computeTendencies<NS>(state);
      const double dts = stage_dt[stage];
      ek::updateCells(mesh_.ncells, nlev, dts, delp0_.data(), thetam0_.data(),
                      delp_tend_.data(), thetam_tend_.data(),
                      state.delp.data(), state.theta.data());
      ek::updateEdges(mesh_.nedges, nlev, dts, u0_.data(), u_tend_.data(),
                      state.u.data());
    }
    ek::rrrPOnly(mesh_.ncells, nlev, state.delp.data(), state.theta.data(),
                 state.phi.data(),
                 p_solve_[static_cast<std::size_t>(m)].data());
    ek::accumulateFlux(mesh_.nedges, nlev, flux_.data(),
                       acc_flux_[static_cast<std::size_t>(m)].data());
  }

  // Phase 2, member-batched: the vertical implicit (w, phi) solve with
  // members as SIMD lanes.
  for (int m = 0; m < nmembers_; ++m) {
    const std::size_t mi = static_cast<std::size_t>(m);
    State& state = *states[m];
    solve_delp_[mi] = state.delp.data();
    solve_theta_[mi] = state.theta.data();
    solve_p_[mi] = p_solve_[mi].data();
    solve_w_[mi] = state.w.data();
    solve_phi_[mi] = state.phi.data();
  }
  ek::vertSolveMemberLanes(nmembers_, mesh_.ncells, nlev, config_.dt,
                           config_.ptop, solve_delp_.data(),
                           solve_theta_.data(), solve_p_.data(),
                           solve_w_.data(), solve_phi_.data(),
                           config_.w_damp_tau);
  ++acc_steps_;
}

template void EnsembleDycore::stepImpl<double>(State* const*);
template void EnsembleDycore::stepImpl<float>(State* const*);

} // namespace grist::dycore
