#include "grist/dycore/state.hpp"

#include <stdexcept>

namespace grist::dycore {

State::State(const grid::HexMesh& mesh, int nlev_, int ntracers) : nlev(nlev_) {
  if (nlev_ < 1) throw std::invalid_argument("State: nlev < 1");
  delp = parallel::Field(mesh.ncells, nlev);
  u = parallel::Field(mesh.nedges, nlev);
  w = parallel::Field(mesh.ncells, nlev + 1);
  theta = parallel::Field(mesh.ncells, nlev);
  phi = parallel::Field(mesh.ncells, nlev + 1);
  tracers.reserve(ntracers);
  for (int t = 0; t < ntracers; ++t) tracers.emplace_back(mesh.ncells, nlev);
}

std::vector<double> State::surfacePressure(double ptop) const {
  std::vector<double> ps(delp.entities(), ptop);
  for (Index c = 0; c < delp.entities(); ++c) {
    for (int k = 0; k < nlev; ++k) ps[c] += delp(c, k);
  }
  return ps;
}

} // namespace grist::dycore
