#include "grist/dycore/vertical_remap.hpp"

#include <algorithm>
#include <cmath>

#include "grist/common/math.hpp"
#include "grist/common/workspace.hpp"

namespace grist::dycore {

using namespace constants;

namespace {

// First-order conservative remap of one mass-weighted scalar: values[k] are
// layer means on old interfaces pi_old; result on new interfaces pi_new.
void remapScalar(int nlev, const double* pi_old, const double* pi_new,
                 const double* values, double* out) {
  for (int j = 0; j < nlev; ++j) {
    const double lo = pi_new[j], hi = pi_new[j + 1];
    double mass = 0.0;
    for (int k = 0; k < nlev; ++k) {
      const double olo = pi_old[k], ohi = pi_old[k + 1];
      const double overlap = std::min(hi, ohi) - std::max(lo, olo);
      if (overlap > 0) mass += overlap * values[k];
      if (olo >= hi) break;
    }
    out[j] = mass / (hi - lo);
  }
}

} // namespace

void verticalRemap(Index ncells, int nlev, double ptop, State& state) {
  using common::Workspace;
  const int ntracers = static_cast<int>(state.tracers.size());
#pragma omp parallel
  {
  // Per-column temporaries (3x nlev+1 interfaces, 2x nlev layers) come from
  // the thread's arena -- no per-cell heap allocation in the hot loop.
  Workspace& ws = Workspace::threadLocal();
  ws.reserve(3 * Workspace::bytesFor<double>(nlev + 1) +
             2 * Workspace::bytesFor<double>(nlev));
#pragma omp for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const Workspace::Frame frame(ws);
    // Old and new (uniform) interface mass coordinates.
    double* pi_old = ws.get<double>(nlev + 1);
    double* pi_new = ws.get<double>(nlev + 1);
    pi_old[0] = pi_new[0] = ptop;
    for (int k = 0; k < nlev; ++k) pi_old[k + 1] = pi_old[k] + state.delp(c, k);
    const double ps = pi_old[nlev];
    const double dpi = (ps - ptop) / nlev;
    for (int k = 0; k < nlev; ++k) pi_new[k + 1] = ptop + (k + 1) * dpi;

    // Skip columns already on (numerically) uniform levels.
    double drift = 0.0;
    for (int k = 0; k <= nlev; ++k) drift = std::max(drift, std::abs(pi_old[k] - pi_new[k]));
    if (drift < 1e-7 * ps) continue;

    double* column = ws.get<double>(nlev);
    double* remapped = ws.get<double>(nlev);
    const auto remap_field = [&](parallel::Field& f) {
      for (int k = 0; k < nlev; ++k) column[k] = f(c, k);
      remapScalar(nlev, pi_old, pi_new, column, remapped);
      for (int k = 0; k < nlev; ++k) f(c, k) = remapped[k];
    };
    remap_field(state.theta);
    for (int t = 0; t < ntracers; ++t) remap_field(state.tracers[t]);

    // w: linear interpolation of the interface profile in pi.
    double* w_old = ws.get<double>(nlev + 1);
    for (int k = 0; k <= nlev; ++k) w_old[k] = state.w(c, k);
    for (int k = 1; k < nlev; ++k) {
      const double target = pi_new[k];
      // Find the old interval containing the target.
      int j = 1;
      while (j < nlev && pi_old[j] < target) ++j;
      const double t =
          (target - pi_old[j - 1]) / std::max(1e-12, pi_old[j] - pi_old[j - 1]);
      state.w(c, k) = (1.0 - t) * w_old[j - 1] + t * w_old[j];
    }

    // New uniform layer masses; hydrostatic phi rebuild (p = pi).
    for (int k = 0; k < nlev; ++k) state.delp(c, k) = dpi;
    for (int k = nlev - 1; k >= 0; --k) {
      const double pi_mid = ptop + (k + 0.5) * dpi;
      const double exner = std::pow(pi_mid / kP0, kKappa);
      const double alpha = kRd * state.theta(c, k) * exner / pi_mid;
      state.phi(c, k) = state.phi(c, k + 1) + alpha * dpi;
    }
  }
  } // omp parallel
}

} // namespace grist::dycore
