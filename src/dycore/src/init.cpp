#include "grist/dycore/init.hpp"

#include <cmath>

namespace grist::dycore {
namespace {

using namespace constants;

// Reference potential-temperature profile on mass levels: statically
// stable, theta increasing with height (decreasing pi).
double thetaProfile(double pi_mid, double t_surface) {
  return t_surface * std::pow(kP0 / pi_mid, 0.12);
}

// Moisture-like reference profile decaying with height.
double moistureProfile(double pi_mid) {
  const double sigma = pi_mid / kP0;
  return 0.016 * std::pow(sigma, 3.0);
}

// Fill a horizontally uniform hydrostatic column and integrate phi so that
// the equation of state returns p == pi exactly (discrete rest state).
void buildHydrostaticColumns(const grid::HexMesh& mesh, const DycoreConfig& cfg,
                             double t_surface, State& state) {
  const int nlev = cfg.nlev;
  const double dpi = (cfg.p_surface - cfg.ptop) / nlev;
  for (Index c = 0; c < mesh.ncells; ++c) {
    double pi_top = cfg.ptop;
    for (int k = 0; k < nlev; ++k) {
      state.delp(c, k) = dpi;
      const double pi_mid = pi_top + 0.5 * dpi;
      state.theta(c, k) = thetaProfile(pi_mid, t_surface);
      pi_top += dpi;
    }
    // Hydrostatic phi: phi(surface) = 0, integrate upward with
    // dphi = alpha dpi, alpha = Rd theta Pi / p evaluated at p = pi_mid.
    state.phi(c, nlev) = 0.0;
    for (int k = nlev - 1; k >= 0; --k) {
      const double pi_mid = cfg.ptop + (k + 0.5) * dpi;
      const double exner = std::pow(pi_mid / kP0, kKappa);
      const double alpha = kRd * state.theta(c, k) * exner / pi_mid;
      state.phi(c, k) = state.phi(c, k + 1) + alpha * state.delp(c, k);
    }
    for (int k = 0; k <= nlev; ++k) state.w(c, k) = 0.0;
  }
  if (!state.tracers.empty()) {
    for (Index c = 0; c < mesh.ncells; ++c) {
      for (int k = 0; k < nlev; ++k) {
        const double pi_mid = cfg.ptop + (k + 0.5) * dpi;
        state.tracers[0](c, k) = moistureProfile(pi_mid);
      }
    }
  }
}

// Great-circle distance from cell c to (lon0, lat0), meters.
double distanceTo(const grid::HexMesh& mesh, Index c, double lon0, double lat0) {
  const Vec3 center = toCartesian({lon0, lat0});
  return greatCircleDistance(mesh.cell_x[c], center, mesh.radius);
}

} // namespace

State initRestState(const grid::HexMesh& mesh, const DycoreConfig& cfg,
                    double t_surface, int ntracers) {
  State state(mesh, cfg.nlev, ntracers);
  buildHydrostaticColumns(mesh, cfg, t_surface, state);
  state.u.fill(0.0);
  return state;
}

std::vector<double> gaussianMountain(const grid::HexMesh& mesh, double lon0,
                                     double lat0, double peak_m,
                                     double halfwidth_m) {
  std::vector<double> height(mesh.ncells);
  const Vec3 center = toCartesian({lon0, lat0});
  for (Index c = 0; c < mesh.ncells; ++c) {
    const double d = greatCircleDistance(mesh.cell_x[c], center, mesh.radius);
    height[c] = peak_m * std::exp(-0.5 * (d / halfwidth_m) * (d / halfwidth_m));
  }
  return height;
}

State initRestStateOverTopography(const grid::HexMesh& mesh,
                                  const DycoreConfig& cfg,
                                  const std::vector<double>& surface_height_m,
                                  double t_surface, int ntracers) {
  if (static_cast<Index>(surface_height_m.size()) != mesh.ncells) {
    throw std::invalid_argument("initRestStateOverTopography: height size");
  }
  State state(mesh, cfg.nlev, ntracers);
  const int nlev = cfg.nlev;
  for (Index c = 0; c < mesh.ncells; ++c) {
    // Surface pressure from the hypsometric relation: integrate the
    // reference theta profile downward from the flat-ground surface until
    // the column's geopotential matches g*z_s. A short fixed-point does it:
    //   ps = p_flat * exp(-g z_s / (Rd T_mean)).
    const double zs = surface_height_m[c];
    double ps = cfg.p_surface;
    for (int it = 0; it < 4; ++it) {
      const double t_mean = t_surface - 0.0032 * zs;  // crude mean layer temp
      ps = cfg.p_surface * std::exp(-kGravity * zs / (kRd * t_mean));
    }
    const double dpi = (ps - cfg.ptop) / nlev;
    double pi_top = cfg.ptop;
    for (int k = 0; k < nlev; ++k) {
      state.delp(c, k) = dpi;
      const double pi_mid = pi_top + 0.5 * dpi;
      state.theta(c, k) = thetaProfile(pi_mid, t_surface);
      pi_top += dpi;
    }
    state.phi(c, nlev) = kGravity * zs;
    for (int k = nlev - 1; k >= 0; --k) {
      const double pi_mid = cfg.ptop + (k + 0.5) * dpi;
      const double exner = std::pow(pi_mid / kP0, kKappa);
      const double alpha = kRd * state.theta(c, k) * exner / pi_mid;
      state.phi(c, k) = state.phi(c, k + 1) + alpha * state.delp(c, k);
    }
    for (int k = 0; k <= nlev; ++k) state.w(c, k) = 0.0;
    if (!state.tracers.empty()) {
      for (int k = 0; k < nlev; ++k) {
        state.tracers[0](c, k) = moistureProfile(cfg.ptop + (k + 0.5) * dpi);
      }
    }
  }
  state.u.fill(0.0);
  return state;
}

State initBaroclinicWave(const grid::HexMesh& mesh, const DycoreConfig& cfg,
                         int ntracers) {
  State state = initRestState(mesh, cfg, 288.0, ntracers);
  const int nlev = cfg.nlev;
  const double u0 = 35.0;
  // Midlatitude zonal jet, stronger aloft; plus a localized perturbation
  // upstream that seeds the growing wave. The jet is not exactly balanced;
  // the first hours perform a geostrophic adjustment, after which the
  // baroclinic wave grows -- sufficient for the precision hierarchy tests.
  const double pert_lon = kPi / 9.0, pert_lat = 2.0 * kPi / 9.0;
  for (Index e = 0; e < mesh.nedges; ++e) {
    const double lat = mesh.edge_ll[e].lat;
    const double lon = mesh.edge_ll[e].lon;
    const double jet = u0 * std::pow(std::sin(2.0 * lat), 2.0);
    // Perturbation: Gaussian bump in zonal wind.
    const double dlon = lon - pert_lon, dlat = lat - pert_lat;
    const double pert = 1.0 * std::exp(-(dlon * dlon + dlat * dlat) / 0.02);
    // Zonal unit vector at the edge: z_hat x r_hat normalized.
    const Vec3 r = mesh.edge_x[e];
    Vec3 east{-r.y, r.x, 0};
    const double n = east.norm();
    if (n > 1e-12) east = east * (1.0 / n);
    const double u_east = (jet + pert) * east.dot(mesh.edge_normal[e]);
    for (int k = 0; k < nlev; ++k) {
      // Vertical structure: jet maximum near 0.25 sigma.
      const double sigma = (k + 0.5) / nlev;
      const double taper = std::pow(std::sin(kPi * std::min(1.0, sigma + 0.25)), 2.0);
      state.u(e, k) = u_east * taper;
    }
  }
  return state;
}

State initTyphoon(const grid::HexMesh& mesh, const DycoreConfig& cfg,
                  const TyphoonParams& prm, int ntracers) {
  State state = initRestState(mesh, cfg, 302.0, ntracers);
  const int nlev = cfg.nlev;
  const Vec3 center = toCartesian({prm.lon0, prm.lat0});
  const double dpi = (cfg.p_surface - cfg.ptop) / nlev;

  // Tangential wind: linear core, algebraic decay outside rm.
  const auto vtan = [&](double r) {
    if (r < prm.rm) return prm.vmax * r / prm.rm;
    return prm.vmax * std::pow(prm.rm / r, 0.6) *
           std::max(0.0, 1.0 - r / (12.0 * prm.rm));
  };

  for (Index e = 0; e < mesh.nedges; ++e) {
    const Vec3 r = mesh.edge_x[e];
    const double dist = greatCircleDistance(r, center, mesh.radius);
    // Cyclonic (counterclockwise in the NH) tangent direction around the
    // storm center: r_hat x (direction to center projected tangentially).
    Vec3 to_center = center - r * r.dot(center);
    const double tn = to_center.norm();
    Vec3 azim{0, 0, 0};
    if (tn > 1e-12) azim = r.cross(to_center * (1.0 / tn));
    Vec3 east{-r.y, r.x, 0};
    const double n = east.norm();
    if (n > 1e-12) east = east * (1.0 / n);
    for (int k = 0; k < nlev; ++k) {
      const double sigma = (k + 0.5) / nlev;
      const double taper = std::pow(sigma, 0.7);  // strongest near surface
      const double v = vtan(dist) * taper;
      const double steering = prm.background_u * std::sin(kPi * sigma);
      state.u(e, k) = (azim * v + east * steering).dot(mesh.edge_normal[e]);
    }
  }
  // Warm core and moist envelope.
  for (Index c = 0; c < mesh.ncells; ++c) {
    const double dist = distanceTo(mesh, c, prm.lon0, prm.lat0);
    const double core = std::exp(-0.5 * (dist / prm.rm) * (dist / prm.rm));
    for (int k = 0; k < nlev; ++k) {
      const double sigma = (k + 0.5) / nlev;
      state.theta(c, k) += 3.0 * core * std::exp(-sigma * 2.0);
      if (!state.tracers.empty()) {
        const double pi_mid = cfg.ptop + (k + 0.5) * dpi;
        state.tracers[0](c, k) =
            moistureProfile(pi_mid) * (1.0 + 0.6 * std::exp(-dist / (4.0 * prm.rm)));
      }
    }
  }
  return state;
}

State initWarmBubble(const grid::HexMesh& mesh, const DycoreConfig& cfg,
                     double dtheta, double rbubble, int ntracers) {
  State state = initRestState(mesh, cfg, 300.0, ntracers);
  const int nlev = cfg.nlev;
  const double lon0 = 0.0, lat0 = 0.0;
  for (Index c = 0; c < mesh.ncells; ++c) {
    const double dist = distanceTo(mesh, c, lon0, lat0);
    if (dist > 3.0 * rbubble) continue;
    const double horiz = std::exp(-0.5 * (dist / rbubble) * (dist / rbubble));
    for (int k = 0; k < nlev; ++k) {
      const double sigma = (k + 0.5) / nlev;
      // Anomaly confined to the lowest quarter of the column.
      const double vert = std::exp(-std::pow((sigma - 0.9) / 0.1, 2.0));
      state.theta(c, k) += dtheta * horiz * vert;
    }
  }
  return state;
}

} // namespace grist::dycore
