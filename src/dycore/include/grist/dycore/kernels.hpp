// Dynamical-core compute kernels on the hexagonal C-grid.
//
// Every kernel the paper's Fig. 9 benchmarks is here under its GRIST name:
//   primal_normal_flux_edge, compute_rrr, calc_coriolis_term,
//   tend_grad_ke_at_edge, tracer_transport_hori_flux_limiter (tracer.hpp),
// plus the remaining operators the solver needs (divergence, vorticity,
// del2 damping, vertical implicit solve).
//
// Mixed precision (paper section 3.4): kernels are templated on NS. Fields
// are stored in double; precision-INSENSITIVE arithmetic is performed after
// an on-the-fly cast to NS. Precision-SENSITIVE terms -- the pressure
// gradient, the gravity/acoustic terms of the vertical implicit solve, and
// the accumulated tracer mass flux -- are hard-coded to double and have no
// NS template parameter.
#pragma once

#include <cmath>

#include "grist/common/math.hpp"
#include "grist/common/workspace.hpp"
#include "grist/dycore/config.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/precision/ns.hpp"

namespace grist::dycore::kernels {

using grid::HexMesh;
using grid::TrskWeights;

// ---------------------------------------------------------------------------
// primal_normal_flux_edge: horizontal dry-mass flux at edges,
//   flux(e,k) = le * u(e,k) * delp_e(e,k),
// with a ratio-limited upwind-biased interpolation of delp to the edge (the
// divisions here are why the paper sees a large single-precision win for
// this kernel).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void primalNormalFluxEdge(const HexMesh& m, Index nedges, int nlev,
                          const double* delp, const double* u, double* flux) {
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    const NS le = static_cast<NS>(m.edge_le[e]);
    for (int k = 0; k < nlev; ++k) {
      const NS h1 = static_cast<NS>(delp[c1 * nlev + k]);
      const NS h2 = static_cast<NS>(delp[c2 * nlev + k]);
      const NS ue = static_cast<NS>(u[e * nlev + k]);
      // Upwind-biased blend: the ratio r guards against over-steepening.
      const NS centered = NS(0.5) * (h1 + h2);
      const NS upwind = ue >= NS(0) ? h1 : h2;
      const NS r = upwind / centered;  // > 0 for positive thickness
      const NS blend = NS(1) / (NS(1) + r * r);
      const NS he = centered + blend * (upwind - centered) * NS(0.5);
      flux[e * nlev + k] = static_cast<double>(le * ue * he);
    }
  }
}

// ---------------------------------------------------------------------------
// div_at_cell: divergence of an edge flux, (1/A_c) sum_e s_{c,e} flux(e,k).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void divAtCell(const HexMesh& m, Index ncells, int nlev, const double* flux,
               double* div) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    for (int k = 0; k < nlev; ++k) div[c * nlev + k] = 0.0;
    for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
      const Index e = m.cell_edges[j];
      const NS sign = static_cast<NS>(m.cell_edge_sign[j]);
      for (int k = 0; k < nlev; ++k) {
        div[c * nlev + k] += static_cast<double>(
            sign * static_cast<NS>(flux[e * nlev + k]) * inv_area);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// kinetic_energy at cells: ke_c = (1/A_c) sum_e (le de / 4) u_e^2.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void kineticEnergy(const HexMesh& m, Index ncells, int nlev, const double* u,
                   double* ke) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    for (int k = 0; k < nlev; ++k) ke[c * nlev + k] = 0.0;
    for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
      const Index e = m.cell_edges[j];
      const NS weight =
          static_cast<NS>(0.25 * m.edge_le[e] * m.edge_de[e]) * inv_area;
      for (int k = 0; k < nlev; ++k) {
        const NS ue = static_cast<NS>(u[e * nlev + k]);
        ke[c * nlev + k] += static_cast<double>(weight * ue * ue);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// tend_grad_ke_at_edge: -(ke(c2) - ke(c1)) / de, the kernel of the paper's
// Fig. 4 listing.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void tendGradKeAtEdge(const HexMesh& m, Index nedges, int nlev, const double* ke,
                      double* tend_u) {
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    const NS inv_de = static_cast<NS>(1.0 / m.edge_de[e]);
    for (int k = 0; k < nlev; ++k) {
      tend_u[e * nlev + k] += static_cast<double>(
          -(static_cast<NS>(ke[c2 * nlev + k]) - static_cast<NS>(ke[c1 * nlev + k])) *
          inv_de);
    }
  }
}

// ---------------------------------------------------------------------------
// vorticity at dual vertices: zeta_v = (1/A_v) sum_e c_{v,e} de u_e, and the
// edge-mean mass-weighted absolute vorticity q used by the Coriolis term.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void vorticityAtVertex(const HexMesh& m, Index nvertices, int nlev,
                       const double* u, double* vor) {
#pragma omp parallel for schedule(static)
  for (Index v = 0; v < nvertices; ++v) {
    const NS inv_area = static_cast<NS>(1.0 / m.vtx_area[v]);
    for (int k = 0; k < nlev; ++k) {
      NS acc = NS(0);
      for (int j = 0; j < 3; ++j) {
        const Index e = m.vtx_edges[v][j];
        acc += static_cast<NS>(m.vtx_edge_sign[v][j] * m.edge_de[e]) *
               static_cast<NS>(u[e * nlev + k]);
      }
      vor[v * nlev + k] = static_cast<double>(acc * inv_area);
    }
  }
}

/// Mass-weighted potential vorticity at vertices:
///   q_v = (zeta_v + f_v) / delp_v, delp_v = kite-weighted cell average.
template <precision::NsReal NS>
void potentialVorticityAtVertex(const HexMesh& m, Index nvertices, int nlev,
                                const double* vor, const double* delp,
                                double omega, double* qv) {
#pragma omp parallel for schedule(static)
  for (Index v = 0; v < nvertices; ++v) {
    const NS f = static_cast<NS>(2.0 * omega * m.vtx_x[v].z);
    const NS inv_area = static_cast<NS>(1.0 / m.vtx_area[v]);
    for (int k = 0; k < nlev; ++k) {
      NS hv = NS(0);
      for (int j = 0; j < 3; ++j) {
        hv += static_cast<NS>(m.vtx_kite_area[v][j]) *
              static_cast<NS>(delp[m.vtx_cells[v][j] * nlev + k]);
      }
      hv *= inv_area;
      qv[v * nlev + k] =
          static_cast<double>((static_cast<NS>(vor[v * nlev + k]) + f) / hv);
    }
  }
}

// ---------------------------------------------------------------------------
// calc_coriolis_term: TRSK nonlinear Coriolis / vorticity flux,
//   tend_u(e) += sum_{e'} w_{e,e'} flux(e') * qbar(e,e'),
// qbar = mean of the edge PVs; energy-neutral by the weight antisymmetry.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void calcCoriolisTerm(const HexMesh& m, const TrskWeights& trsk, Index nedges,
                      int nlev, const double* flux, const double* qv,
                      double* tend_u) {
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    const Index v1 = m.edge_vertex[e][0];
    const Index v2 = m.edge_vertex[e][1];
    for (int k = 0; k < nlev; ++k) {
      const NS qe =
          NS(0.5) * (static_cast<NS>(qv[v1 * nlev + k]) + static_cast<NS>(qv[v2 * nlev + k]));
      NS acc = NS(0);
      for (Index j = trsk.offset[e]; j < trsk.offset[e + 1]; ++j) {
        const Index ep = trsk.edge[j];
        const NS qep = NS(0.5) * (static_cast<NS>(qv[m.edge_vertex[ep][0] * nlev + k]) +
                                  static_cast<NS>(qv[m.edge_vertex[ep][1] * nlev + k]));
        // flux carries an le factor; remove e''s own length scale so the
        // TRSK weight (which already holds le'/de) is applied to delp*u.
        acc += static_cast<NS>(trsk.weight[j]) *
               static_cast<NS>(flux[ep * nlev + k]) *
               static_cast<NS>(1.0 / m.edge_le[ep]) * NS(0.5) * (qe + qep);
      }
      tend_u[e * nlev + k] += static_cast<double>(acc);
    }
  }
}

// ---------------------------------------------------------------------------
// compute_rrr: thermodynamic diagnostics per layer (the "rho/p/Pi" kernel).
// Inputs delp, theta, phi; outputs specific volume alpha, full pressure p,
// Exner Pi, and hydrostatic mid-level mass coordinate pi_mid.
// p is always computed in double: it feeds the pressure-gradient and
// gravity terms, which the paper identifies as precision-sensitive. The
// pow() calls dominating this kernel still run in NS for alpha/Pi.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
inline void computeRrrColumn(Index c, int nlev, double ptop, const double* delp,
                             const double* theta, const double* phi,
                             double* alpha, double* p, double* exner,
                             double* pi_mid) {
  using namespace constants;
  const double gamma = kCp / (kCp - kRd);  // cp/cv
  double pi_acc = ptop;
  for (int k = 0; k < nlev; ++k) {
    const double dp = delp[c * nlev + k];
    pi_mid[c * nlev + k] = pi_acc + 0.5 * dp;
    pi_acc += dp;
    // Layer thickness in geopotential; positive by construction.
    const NS dphi = static_cast<NS>(phi[c * (nlev + 1) + k] -
                                    phi[c * (nlev + 1) + k + 1]);
    const NS a = dphi / static_cast<NS>(dp);
    alpha[c * nlev + k] = static_cast<double>(a);
    // Equation of state: p = p0 (rho Rd theta / p0)^(cp/cv), rho = dp/dphi
    // (delta-pi = g rho delta-z and delta-phi = g delta-z).
    // Double on purpose: p feeds the sensitive PGF/gravity terms.
    const double rho = dp / static_cast<double>(dphi);
    const double pk = kP0 * std::pow(rho * kRd * theta[c * nlev + k] / kP0, gamma);
    p[c * nlev + k] = pk;
    exner[c * nlev + k] = static_cast<double>(
        std::pow(static_cast<NS>(pk / kP0), static_cast<NS>(kKappa)));
  }
}

template <precision::NsReal NS>
void computeRrr(Index ncells, int nlev, double ptop, const double* delp,
                    const double* theta, const double* phi, double* alpha,
                    double* p, double* exner, double* pi_mid) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    computeRrrColumn<NS>(c, nlev, ptop, delp, theta, phi, alpha, p, exner,
                         pi_mid);
  }
}

/// Band variant: same per-column arithmetic, restricted to the cell indices
/// in `cells` (the boundary or interior band of a decomposed rank). Columns
/// are independent, so splitting the sweep is bit-exact.
template <precision::NsReal NS>
void computeRrrBand(const Index* cells, Index nband, int nlev, double ptop,
                    const double* delp, const double* theta, const double* phi,
                    double* alpha, double* p, double* exner, double* pi_mid) {
#pragma omp parallel for schedule(static)
  for (Index i = 0; i < nband; ++i) {
    computeRrrColumn<NS>(cells[i], nlev, ptop, delp, theta, phi, alpha, p,
                         exner, pi_mid);
  }
}

// ---------------------------------------------------------------------------
// calc_pressure_gradient (SENSITIVE -- double only):
//   tend_u(e) -= [ (phm(c2)-phm(c1)) + alpha_e ((p-pi)(c2)-(p-pi)(c1)) ] / de
// phm = mid-level geopotential. In the hydrostatic limit p == pi and this
// collapses to the classic -grad(phi) PGF on mass surfaces.
// ---------------------------------------------------------------------------
void calcPressureGradient(const HexMesh& m, Index nedges, int nlev,
                          const double* phi, const double* alpha, const double* p,
                          const double* pi_mid, double* tend_u);

// ---------------------------------------------------------------------------
// del2 damping on u: nu * [ grad(div) - curl(zeta) ] . n, plus divergence
// damping with its own (larger) coefficient; the standard stabilizers of an
// explicit horizontal solver.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void del2Momentum(const HexMesh& m, Index nedges, int nlev, const double* div_u,
                  const double* vor, double nu_div, double nu_vor,
                  double* tend_u) {
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    const Index v1 = m.edge_vertex[e][0];
    const Index v2 = m.edge_vertex[e][1];
    const NS inv_de = static_cast<NS>(1.0 / m.edge_de[e]);
    const NS inv_le = static_cast<NS>(1.0 / m.edge_le[e]);
    // Scale del2 by local grid size^2 so damping is resolution-uniform.
    const NS scale = static_cast<NS>(m.edge_de[e] * m.edge_de[e]);
    for (int k = 0; k < nlev; ++k) {
      const NS grad_div =
          (static_cast<NS>(div_u[c2 * nlev + k]) - static_cast<NS>(div_u[c1 * nlev + k])) *
          inv_de;
      const NS curl_vor =
          (static_cast<NS>(vor[v2 * nlev + k]) - static_cast<NS>(vor[v1 * nlev + k])) *
          inv_le;
      tend_u[e * nlev + k] += static_cast<double>(
          scale * (static_cast<NS>(nu_div) * grad_div - static_cast<NS>(nu_vor) * curl_vor));
    }
  }
}

// ---------------------------------------------------------------------------
// Horizontal flux-form advection of a cell scalar (theta): the tendency of
// the mass-weighted quantity, -div(flux * s_edge), with upwind-biased s_e.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void scalarFluxTendency(const HexMesh& m, Index ncells, int nlev,
                        const double* flux, const double* scalar, double* tend) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    for (int k = 0; k < nlev; ++k) tend[c * nlev + k] = 0.0;
    for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
      const Index e = m.cell_edges[j];
      const Index c1 = m.edge_cell[e][0];
      const Index c2 = m.edge_cell[e][1];
      const NS sign = static_cast<NS>(m.cell_edge_sign[j]);
      for (int k = 0; k < nlev; ++k) {
        const NS f = static_cast<NS>(flux[e * nlev + k]);
        // Upwind in the direction of the mass flux (f > 0 means c1 -> c2).
        const NS se = f >= NS(0) ? static_cast<NS>(scalar[c1 * nlev + k])
                                 : static_cast<NS>(scalar[c2 * nlev + k]);
        tend[c * nlev + k] -= static_cast<double>(sign * f * se * inv_area);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Cell-scalar del2 diffusion: nu * dx^2 * Laplacian(s).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void del2Scalar(const HexMesh& m, Index ncells, int nlev, const double* scalar,
                double nu, double* tend) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
      const Index e = m.cell_edges[j];
      const Index nb = m.cell_cells[j];
      const NS w = static_cast<NS>(m.edge_le[e] / m.edge_de[e] * m.edge_de[e] *
                                   m.edge_de[e] * nu) *
                   inv_area;
      for (int k = 0; k < nlev; ++k) {
        tend[c * nlev + k] += static_cast<double>(
            w * (static_cast<NS>(scalar[nb * nlev + k]) -
                 static_cast<NS>(scalar[c * nlev + k])));
      }
    }
  }
}

// ---------------------------------------------------------------------------
// vert_implicit_solver (SENSITIVE -- double only): fully implicit update of
// (w, phi) coupling the vertical acoustic terms; Thomas algorithm per
// column. See dycore.cpp for the discretization notes. All per-column
// temporaries come from the calling thread's common::Workspace: zero heap
// allocations in the steady state.
// ---------------------------------------------------------------------------
void vertImplicitSolver(Index ncells, int nlev, double dt, double ptop,
                        const double* delp, const double* theta, const double* p,
                        double* w, double* phi, double w_damp_tau);

/// Band variant of the column solve, restricted to the cell indices in
/// `cells`. Columns are independent, so splitting the sweep is bit-exact.
void vertImplicitSolverBand(const Index* cells, Index nband, int nlev,
                            double dt, double ptop, const double* delp,
                            const double* theta, const double* p, double* w,
                            double* phi, double w_damp_tau);

// ===========================================================================
// Fused single-sweep kernels. The dycore tendency step is memory-bandwidth
// bound: each unfused kernel above re-streams the same connectivity (CSR
// neighbor lists, edge endpoints) and geometry, and the momentum tendency is
// zero-filled then read-modify-written four times. The fused variants below
// make one pass per entity class and write each output exactly once.
//
// Numerical contract: for every output element the fused kernels perform
// the SAME operations in the SAME order as the unfused sequence they
// replace, so results are bit-identical in both precisions (asserted by
// tests/dycore/test_fused_kernels.cpp). The precision split is preserved:
// the pressure-gradient contribution inside fusedMomentumTendency stays
// hard-double exactly as calcPressureGradient does.
// ===========================================================================

// ---------------------------------------------------------------------------
// Fused EDGE sweep: primal_normal_flux_edge + the plain velocity flux
// uflux = le * u, sharing the edge_cell / le / u loads of a single pass.
// uflux feeds divAtCell(div_u) and is computed in double like the loop it
// replaces in Dycore::computeTendencies.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedEdgeFluxes(const HexMesh& m, Index nedges, int nlev,
                     const double* delp, const double* u, double* flux,
                     double* uflux) {
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    const double le_d = m.edge_le[e];
    const NS le = static_cast<NS>(le_d);
    for (int k = 0; k < nlev; ++k) {
      const NS h1 = static_cast<NS>(delp[c1 * nlev + k]);
      const NS h2 = static_cast<NS>(delp[c2 * nlev + k]);
      const NS ue = static_cast<NS>(u[e * nlev + k]);
      const NS centered = NS(0.5) * (h1 + h2);
      const NS upwind = ue >= NS(0) ? h1 : h2;
      const NS r = upwind / centered;
      const NS blend = NS(1) / (NS(1) + r * r);
      const NS he = centered + blend * (upwind - centered) * NS(0.5);
      flux[e * nlev + k] = static_cast<double>(le * ue * he);
      uflux[e * nlev + k] = le_d * u[e * nlev + k];
    }
  }
}

// ---------------------------------------------------------------------------
// Fused CELL-NEIGHBOR sweep: divAtCell(flux) + divAtCell(uflux) +
// kineticEnergy in one pass over the cell_edges CSR lists (the unfused
// kernels each re-stream cell_offset/cell_edges/cell_edge_sign and re-zero
// their output).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedCellDiagnostics(const HexMesh& m, Index ncells, int nlev,
                          const double* flux, const double* uflux,
                          const double* u, double* div_flux, double* div_u,
                          double* ke) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    double* df = div_flux + static_cast<std::size_t>(c) * nlev;
    double* du = div_u + static_cast<std::size_t>(c) * nlev;
    double* kc = ke + static_cast<std::size_t>(c) * nlev;
    for (int k = 0; k < nlev; ++k) {
      df[k] = 0.0;
      du[k] = 0.0;
      kc[k] = 0.0;
    }
    for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
      const Index e = m.cell_edges[j];
      const NS sign = static_cast<NS>(m.cell_edge_sign[j]);
      const NS weight =
          static_cast<NS>(0.25 * m.edge_le[e] * m.edge_de[e]) * inv_area;
      for (int k = 0; k < nlev; ++k) {
        df[k] += static_cast<double>(
            sign * static_cast<NS>(flux[e * nlev + k]) * inv_area);
        du[k] += static_cast<double>(
            sign * static_cast<NS>(uflux[e * nlev + k]) * inv_area);
        const NS ue = static_cast<NS>(u[e * nlev + k]);
        kc[k] += static_cast<double>(weight * ue * ue);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Fused VERTEX sweep: vorticityAtVertex + potentialVorticityAtVertex. The
// PV kernel consumes the vorticity of the very vertex the first kernel just
// wrote; fusing removes a full vertex-field round trip through memory.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedVertexDiagnostics(const HexMesh& m, Index nvertices, int nlev,
                            const double* u, const double* delp, double omega,
                            double* vor, double* qv) {
#pragma omp parallel for schedule(static)
  for (Index v = 0; v < nvertices; ++v) {
    const NS inv_area = static_cast<NS>(1.0 / m.vtx_area[v]);
    const NS f = static_cast<NS>(2.0 * omega * m.vtx_x[v].z);
    for (int k = 0; k < nlev; ++k) {
      NS acc = NS(0);
      for (int j = 0; j < 3; ++j) {
        const Index e = m.vtx_edges[v][j];
        acc += static_cast<NS>(m.vtx_edge_sign[v][j] * m.edge_de[e]) *
               static_cast<NS>(u[e * nlev + k]);
      }
      const double zeta = static_cast<double>(acc * inv_area);
      vor[v * nlev + k] = zeta;
      NS hv = NS(0);
      for (int j = 0; j < 3; ++j) {
        hv += static_cast<NS>(m.vtx_kite_area[v][j]) *
              static_cast<NS>(delp[m.vtx_cells[v][j] * nlev + k]);
      }
      hv *= inv_area;
      qv[v * nlev + k] =
          static_cast<double>((static_cast<NS>(zeta) + f) / hv);
    }
  }
}

// ---------------------------------------------------------------------------
// Fused CELL-TENDENCY sweep: delp_tend = -div(flux), plus the mass-weighted
// theta tendency = scalarFluxTendency + delp * del2Scalar(theta, nu) in one
// CSR pass (the unfused path runs three cell loops and a zero-fill of a
// scratch field). The delp_tend row doubles as the del2 accumulator until
// its own value is written last -- both rows are private to the cell.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedScalarTendencies(const HexMesh& m, Index ncells, int nlev,
                           const double* flux, const double* scalar,
                           const double* delp, const double* div_flux,
                           double nu, double* delp_tend, double* thetam_tend) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    double* dt_row = delp_tend + static_cast<std::size_t>(c) * nlev;
    double* tt_row = thetam_tend + static_cast<std::size_t>(c) * nlev;
    for (int k = 0; k < nlev; ++k) {
      tt_row[k] = 0.0;  // advective accumulator
      dt_row[k] = 0.0;  // del2 accumulator (overwritten with -div below)
    }
    for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
      const Index e = m.cell_edges[j];
      const Index c1 = m.edge_cell[e][0];
      const Index c2 = m.edge_cell[e][1];
      const Index nb = m.cell_cells[j];
      const NS sign = static_cast<NS>(m.cell_edge_sign[j]);
      const NS w = static_cast<NS>(m.edge_le[e] / m.edge_de[e] * m.edge_de[e] *
                                   m.edge_de[e] * nu) *
                   inv_area;
      for (int k = 0; k < nlev; ++k) {
        const NS fl = static_cast<NS>(flux[e * nlev + k]);
        const NS se = fl >= NS(0) ? static_cast<NS>(scalar[c1 * nlev + k])
                                  : static_cast<NS>(scalar[c2 * nlev + k]);
        tt_row[k] -= static_cast<double>(sign * fl * se * inv_area);
        dt_row[k] += static_cast<double>(
            w * (static_cast<NS>(scalar[nb * nlev + k]) -
                 static_cast<NS>(scalar[c * nlev + k])));
      }
    }
    for (int k = 0; k < nlev; ++k) {
      tt_row[k] += delp[c * nlev + k] * dt_row[k];
      dt_row[k] = -div_flux[c * nlev + k];
    }
  }
}

// ---------------------------------------------------------------------------
// Fused EDGE-TENDENCY sweep: tendGradKeAtEdge + calcCoriolisTerm +
// calcPressureGradient + del2Momentum in one pass; u_tend is written once
// instead of zero-filled then read-modify-written four times. The per-(e,k)
// accumulation order matches the unfused kernel sequence exactly; the PGF
// contribution remains hard-double (SENSITIVE) while the rest runs in NS.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedMomentumTendency(const HexMesh& m, const TrskWeights& trsk,
                           Index nedges, int nlev, const double* ke,
                           const double* qv, const double* flux,
                           const double* phi, const double* alpha,
                           const double* p, const double* div_u,
                           const double* vor, double nu_div, double nu_vor,
                           double* tend_u) {
#pragma omp parallel
  {
    // Per-level accumulator rows (arena-backed, heap-free when warm). The
    // Coriolis stencil loop runs j-outer / k-inner so the TRSK indices,
    // weights and 1/le' are loaded once per stencil edge instead of once per
    // (stencil edge, level); per element the NS additions still happen in
    // ascending-j order, so results stay bitwise identical to the unfused
    // k-outer calcCoriolisTerm.
    common::Workspace& ws = common::Workspace::threadLocal();
    ws.reserve(2 * common::Workspace::bytesFor<NS>(nlev));
#pragma omp for schedule(static)
    for (Index e = 0; e < nedges; ++e) {
      const common::Workspace::Frame frame(ws);
      NS* qe_row = ws.get<NS>(nlev);
      NS* acc_row = ws.get<NS>(nlev);
      const Index c1 = m.edge_cell[e][0];
      const Index c2 = m.edge_cell[e][1];
      const Index v1 = m.edge_vertex[e][0];
      const Index v2 = m.edge_vertex[e][1];
      const NS inv_de = static_cast<NS>(1.0 / m.edge_de[e]);
      const NS inv_le = static_cast<NS>(1.0 / m.edge_le[e]);
      const NS scale = static_cast<NS>(m.edge_de[e] * m.edge_de[e]);
      const double inv_de_d = 1.0 / m.edge_de[e];
      for (int k = 0; k < nlev; ++k) {
        qe_row[k] = NS(0.5) * (static_cast<NS>(qv[v1 * nlev + k]) +
                               static_cast<NS>(qv[v2 * nlev + k]));
        acc_row[k] = NS(0);
      }
      // 2) TRSK nonlinear Coriolis (accumulated first; folded in below in
      //    the unfused gradKe -> Coriolis -> PGF -> del2 order).
      for (Index j = trsk.offset[e]; j < trsk.offset[e + 1]; ++j) {
        const Index ep = trsk.edge[j];
        const NS wj = static_cast<NS>(trsk.weight[j]);
        const NS inv_lep = static_cast<NS>(1.0 / m.edge_le[ep]);
        const double* qv1 = qv + m.edge_vertex[ep][0] * nlev;
        const double* qv2 = qv + m.edge_vertex[ep][1] * nlev;
        const double* fl = flux + ep * nlev;
        for (int k = 0; k < nlev; ++k) {
          const NS qep = NS(0.5) * (static_cast<NS>(qv1[k]) +
                                    static_cast<NS>(qv2[k]));
          acc_row[k] += wj * static_cast<NS>(fl[k]) * inv_lep * NS(0.5) *
                        (qe_row[k] + qep);
        }
      }
      for (int k = 0; k < nlev; ++k) {
        // 1) -grad(ke) (accumulation starts from the unfused zero-fill).
        double t = 0.0;
        t += static_cast<double>(
            -(static_cast<NS>(ke[c2 * nlev + k]) - static_cast<NS>(ke[c1 * nlev + k])) *
            inv_de);
        t += static_cast<double>(acc_row[k]);
        // 3) Pressure gradient (SENSITIVE -- double; see calcPressureGradient
        //    for the cancellation notes).
        const double phm1 =
            0.5 * (phi[c1 * (nlev + 1) + k] + phi[c1 * (nlev + 1) + k + 1]);
        const double phm2 =
            0.5 * (phi[c2 * (nlev + 1) + k] + phi[c2 * (nlev + 1) + k + 1]);
        const double alpha_e = 0.5 * (alpha[c1 * nlev + k] + alpha[c2 * nlev + k]);
        t -= ((phm2 - phm1) + alpha_e * (p[c2 * nlev + k] - p[c1 * nlev + k])) *
             inv_de_d;
        // 4) del2 damping.
        const NS grad_div = (static_cast<NS>(div_u[c2 * nlev + k]) -
                             static_cast<NS>(div_u[c1 * nlev + k])) *
                            inv_de;
        const NS curl_vor = (static_cast<NS>(vor[v2 * nlev + k]) -
                             static_cast<NS>(vor[v1 * nlev + k])) *
                            inv_le;
        t += static_cast<double>(scale * (static_cast<NS>(nu_div) * grad_div -
                                          static_cast<NS>(nu_vor) * curl_vor));
        tend_u[e * nlev + k] = t;
      }
    }
  } // omp parallel
}

} // namespace grist::dycore::kernels
