// Dynamical-core compute kernels on the hexagonal C-grid.
//
// Every kernel the paper's Fig. 9 benchmarks is here under its GRIST name:
//   primal_normal_flux_edge, compute_rrr, calc_coriolis_term,
//   tend_grad_ke_at_edge, tracer_transport_hori_flux_limiter (tracer.hpp),
// plus the remaining operators the solver needs (divergence, vorticity,
// del2 damping, vertical implicit solve).
//
// Since the execution-backend refactor the per-entity arithmetic lives ONCE
// in grist/backend/kernels.hpp, shared with the SW26010P cost model in
// src/swgomp. The functions here are the production (HostBackend)
// instantiations: OpenMP sweep drivers that bind raw-pointer views and a
// no-op accounting context, so under -O3 each body compiles to exactly the
// pre-refactor loads/stores/FLOPs (guarded by the legacy-vs-backend pairs in
// bench_host_kernels and the bit-exactness tests).
//
// Mixed precision (paper section 3.4): kernels are templated on NS. Fields
// are stored in double; precision-INSENSITIVE arithmetic is performed after
// an on-the-fly cast to NS. Precision-SENSITIVE terms -- the pressure
// gradient, the gravity/acoustic terms of the vertical implicit solve, and
// the accumulated tracer mass flux -- are hard-coded to double and have no
// NS template parameter.
#pragma once

#include <cmath>

#include "grist/backend/kernels.hpp"
#include "grist/common/math.hpp"
#include "grist/common/workspace.hpp"
#include "grist/dycore/config.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/precision/ns.hpp"

namespace grist::dycore::kernels {

using grid::HexMesh;
using grid::TrskWeights;
namespace bk = grist::backend::kernels;
using grist::backend::hostMut;
using grist::backend::hostView;
using grist::backend::makeHostMeshView;
using grist::backend::makeHostTrskView;
using HostCtx = grist::backend::HostBackend::Context;

// ---------------------------------------------------------------------------
// primal_normal_flux_edge: horizontal dry-mass flux at edges,
//   flux(e,k) = le * u(e,k) * delp_e(e,k),
// with a ratio-limited upwind-biased interpolation of delp to the edge (the
// divisions here are why the paper sees a large single-precision win for
// this kernel).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void primalNormalFluxEdge(const HexMesh& m, Index nedges, int nlev,
                          const double* delp, const double* u, double* flux) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    HostCtx ctx;
    bk::primalNormalFluxEdge<NS>(ctx, e, mv, nlev, hostView(delp), hostView(u),
                                 hostMut(flux));
  }
}

// ---------------------------------------------------------------------------
// div_at_cell: divergence of an edge flux, (1/A_c) sum_e s_{c,e} flux(e,k).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void divAtCell(const HexMesh& m, Index ncells, int nlev, const double* flux,
               double* div) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    HostCtx ctx;
    bk::divAtCell<NS>(ctx, c, mv, nlev, hostView(flux), hostMut(div));
  }
}

// ---------------------------------------------------------------------------
// kinetic_energy at cells: ke_c = (1/A_c) sum_e (le de / 4) u_e^2.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void kineticEnergy(const HexMesh& m, Index ncells, int nlev, const double* u,
                   double* ke) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    HostCtx ctx;
    bk::kineticEnergy<NS>(ctx, c, mv, nlev, hostView(u), hostMut(ke));
  }
}

// ---------------------------------------------------------------------------
// tend_grad_ke_at_edge: -(ke(c2) - ke(c1)) / de, the kernel of the paper's
// Fig. 4 listing.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void tendGradKeAtEdge(const HexMesh& m, Index nedges, int nlev, const double* ke,
                      double* tend_u) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    HostCtx ctx;
    bk::tendGradKeAtEdge<NS>(ctx, e, mv, nlev, hostView(ke), hostMut(tend_u));
  }
}

// ---------------------------------------------------------------------------
// vorticity at dual vertices: zeta_v = (1/A_v) sum_e c_{v,e} de u_e, and the
// edge-mean mass-weighted absolute vorticity q used by the Coriolis term.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void vorticityAtVertex(const HexMesh& m, Index nvertices, int nlev,
                       const double* u, double* vor) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index v = 0; v < nvertices; ++v) {
    HostCtx ctx;
    bk::vorticityAtVertex<NS>(ctx, v, mv, nlev, hostView(u), hostMut(vor));
  }
}

/// Mass-weighted potential vorticity at vertices:
///   q_v = (zeta_v + f_v) / delp_v, delp_v = kite-weighted cell average.
template <precision::NsReal NS>
void potentialVorticityAtVertex(const HexMesh& m, Index nvertices, int nlev,
                                const double* vor, const double* delp,
                                double omega, double* qv) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index v = 0; v < nvertices; ++v) {
    HostCtx ctx;
    bk::potentialVorticityAtVertex<NS>(ctx, v, mv, nlev, hostView(vor),
                                       hostView(delp), omega, hostMut(qv));
  }
}

// ---------------------------------------------------------------------------
// calc_coriolis_term: TRSK nonlinear Coriolis / vorticity flux,
//   tend_u(e) += sum_{e'} w_{e,e'} flux(e') * qbar(e,e'),
// qbar = mean of the edge PVs; energy-neutral by the weight antisymmetry.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void calcCoriolisTerm(const HexMesh& m, const TrskWeights& trsk, Index nedges,
                      int nlev, const double* flux, const double* qv,
                      double* tend_u) {
  const auto mv = makeHostMeshView(m);
  const auto tv = makeHostTrskView(trsk);
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    HostCtx ctx;
    bk::calcCoriolisTerm<NS>(ctx, e, mv, tv, nlev, hostView(flux), hostView(qv),
                             hostMut(tend_u));
  }
}

// ---------------------------------------------------------------------------
// compute_rrr: thermodynamic diagnostics per layer (the "rho/p/Pi" kernel).
// Inputs delp, theta, phi; outputs specific volume alpha, full pressure p,
// Exner Pi, and hydrostatic mid-level mass coordinate pi_mid.
// p is always computed in double: it feeds the pressure-gradient and
// gravity terms, which the paper identifies as precision-sensitive. The
// pow() calls dominating this kernel still run in NS for alpha/Pi.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
inline void computeRrrColumn(Index c, int nlev, double ptop, const double* delp,
                             const double* theta, const double* phi,
                             double* alpha, double* p, double* exner,
                             double* pi_mid) {
  HostCtx ctx;
  bk::computeRrrColumn<NS, grist::backend::HostBackend>(
      ctx, c, nlev, ptop, hostView(delp), hostView(theta), hostView(phi),
      hostMut(alpha), hostMut(p), hostMut(exner), hostMut(pi_mid));
}

template <precision::NsReal NS>
void computeRrr(Index ncells, int nlev, double ptop, const double* delp,
                    const double* theta, const double* phi, double* alpha,
                    double* p, double* exner, double* pi_mid) {
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    computeRrrColumn<NS>(c, nlev, ptop, delp, theta, phi, alpha, p, exner,
                         pi_mid);
  }
}

/// Band variant: same per-column arithmetic, restricted to the cell indices
/// in `cells` (the boundary or interior band of a decomposed rank). Columns
/// are independent, so splitting the sweep is bit-exact.
template <precision::NsReal NS>
void computeRrrBand(const Index* cells, Index nband, int nlev, double ptop,
                    const double* delp, const double* theta, const double* phi,
                    double* alpha, double* p, double* exner, double* pi_mid) {
#pragma omp parallel for schedule(static)
  for (Index i = 0; i < nband; ++i) {
    computeRrrColumn<NS>(cells[i], nlev, ptop, delp, theta, phi, alpha, p,
                         exner, pi_mid);
  }
}

// ---------------------------------------------------------------------------
// calc_pressure_gradient (SENSITIVE -- double only):
//   tend_u(e) -= [ (phm(c2)-phm(c1)) + alpha_e ((p-pi)(c2)-(p-pi)(c1)) ] / de
// phm = mid-level geopotential. In the hydrostatic limit p == pi and this
// collapses to the classic -grad(phi) PGF on mass surfaces.
// ---------------------------------------------------------------------------
void calcPressureGradient(const HexMesh& m, Index nedges, int nlev,
                          const double* phi, const double* alpha, const double* p,
                          const double* pi_mid, double* tend_u);

// ---------------------------------------------------------------------------
// del2 damping on u: nu * [ grad(div) - curl(zeta) ] . n, plus divergence
// damping with its own (larger) coefficient; the standard stabilizers of an
// explicit horizontal solver.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void del2Momentum(const HexMesh& m, Index nedges, int nlev, const double* div_u,
                  const double* vor, double nu_div, double nu_vor,
                  double* tend_u) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    HostCtx ctx;
    bk::del2Momentum<NS>(ctx, e, mv, nlev, hostView(div_u), hostView(vor),
                         nu_div, nu_vor, hostMut(tend_u));
  }
}

// ---------------------------------------------------------------------------
// Horizontal flux-form advection of a cell scalar (theta): the tendency of
// the mass-weighted quantity, -div(flux * s_edge), with upwind-biased s_e.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void scalarFluxTendency(const HexMesh& m, Index ncells, int nlev,
                        const double* flux, const double* scalar, double* tend) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    HostCtx ctx;
    bk::scalarFluxTendency<NS>(ctx, c, mv, nlev, hostView(flux),
                               hostView(scalar), hostMut(tend));
  }
}

// ---------------------------------------------------------------------------
// Cell-scalar del2 diffusion: nu * dx^2 * Laplacian(s).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void del2Scalar(const HexMesh& m, Index ncells, int nlev, const double* scalar,
                double nu, double* tend) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    HostCtx ctx;
    bk::del2Scalar<NS>(ctx, c, mv, nlev, hostView(scalar), nu, hostMut(tend));
  }
}

// ---------------------------------------------------------------------------
// vert_implicit_solver (SENSITIVE -- double only): fully implicit update of
// (w, phi) coupling the vertical acoustic terms; Thomas algorithm per
// column. See dycore.cpp for the discretization notes. All per-column
// temporaries come from the calling thread's common::Workspace: zero heap
// allocations in the steady state.
// ---------------------------------------------------------------------------
void vertImplicitSolver(Index ncells, int nlev, double dt, double ptop,
                        const double* delp, const double* theta, const double* p,
                        double* w, double* phi, double w_damp_tau);

/// Band variant of the column solve, restricted to the cell indices in
/// `cells`. Columns are independent, so splitting the sweep is bit-exact.
void vertImplicitSolverBand(const Index* cells, Index nband, int nlev,
                            double dt, double ptop, const double* delp,
                            const double* theta, const double* p, double* w,
                            double* phi, double w_damp_tau);

// ===========================================================================
// Fused single-sweep kernels. The dycore tendency step is memory-bandwidth
// bound: each unfused kernel above re-streams the same connectivity (CSR
// neighbor lists, edge endpoints) and geometry, and the momentum tendency is
// zero-filled then read-modify-written four times. The fused variants below
// make one pass per entity class and write each output exactly once.
//
// Numerical contract: for every output element the fused kernels perform
// the SAME operations in the SAME order as the unfused sequence they
// replace, so results are bit-identical in both precisions (asserted by
// tests/dycore/test_fused_kernels.cpp). The precision split is preserved:
// the pressure-gradient contribution inside fusedMomentumTendency stays
// hard-double exactly as calcPressureGradient does.
// ===========================================================================

// ---------------------------------------------------------------------------
// Fused EDGE sweep: primal_normal_flux_edge + the plain velocity flux
// uflux = le * u, sharing the edge_cell / le / u loads of a single pass.
// uflux feeds divAtCell(div_u) and is computed in double like the loop it
// replaces in Dycore::computeTendencies.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedEdgeFluxes(const HexMesh& m, Index nedges, int nlev,
                     const double* delp, const double* u, double* flux,
                     double* uflux) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < nedges; ++e) {
    HostCtx ctx;
    bk::fusedEdgeFluxes<NS>(ctx, e, mv, nlev, hostView(delp), hostView(u),
                            hostMut(flux), hostMut(uflux));
  }
}

// ---------------------------------------------------------------------------
// Fused CELL-NEIGHBOR sweep: divAtCell(flux) + divAtCell(uflux) +
// kineticEnergy in one pass over the cell_edges CSR lists (the unfused
// kernels each re-stream cell_offset/cell_edges/cell_edge_sign and re-zero
// their output).
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedCellDiagnostics(const HexMesh& m, Index ncells, int nlev,
                          const double* flux, const double* uflux,
                          const double* u, double* div_flux, double* div_u,
                          double* ke) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    HostCtx ctx;
    bk::fusedCellDiagnostics<NS>(ctx, c, mv, nlev, hostView(flux),
                                 hostView(uflux), hostView(u),
                                 hostMut(div_flux), hostMut(div_u), hostMut(ke));
  }
}

// ---------------------------------------------------------------------------
// Fused VERTEX sweep: vorticityAtVertex + potentialVorticityAtVertex. The
// PV kernel consumes the vorticity of the very vertex the first kernel just
// wrote; fusing removes a full vertex-field round trip through memory.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedVertexDiagnostics(const HexMesh& m, Index nvertices, int nlev,
                            const double* u, const double* delp, double omega,
                            double* vor, double* qv) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index v = 0; v < nvertices; ++v) {
    HostCtx ctx;
    bk::fusedVertexDiagnostics<NS>(ctx, v, mv, nlev, hostView(u),
                                   hostView(delp), omega, hostMut(vor),
                                   hostMut(qv));
  }
}

// ---------------------------------------------------------------------------
// Fused CELL-TENDENCY sweep: delp_tend = -div(flux), plus the mass-weighted
// theta tendency = scalarFluxTendency + delp * del2Scalar(theta, nu) in one
// CSR pass (the unfused path runs three cell loops and a zero-fill of a
// scratch field). The delp_tend row doubles as the del2 accumulator until
// its own value is written last -- both rows are private to the cell.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedScalarTendencies(const HexMesh& m, Index ncells, int nlev,
                           const double* flux, const double* scalar,
                           const double* delp, const double* div_flux,
                           double nu, double* delp_tend, double* thetam_tend) {
  const auto mv = makeHostMeshView(m);
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < ncells; ++c) {
    HostCtx ctx;
    bk::fusedScalarTendencies<NS>(ctx, c, mv, nlev, hostView(flux),
                                  hostView(scalar), hostView(delp),
                                  hostView(div_flux), nu, hostMut(delp_tend),
                                  hostMut(thetam_tend));
  }
}

// ---------------------------------------------------------------------------
// Fused EDGE-TENDENCY sweep: tendGradKeAtEdge + calcCoriolisTerm +
// calcPressureGradient + del2Momentum in one pass; u_tend is written once
// instead of zero-filled then read-modify-written four times. The per-(e,k)
// accumulation order matches the unfused kernel sequence exactly; the PGF
// contribution remains hard-double (SENSITIVE) while the rest runs in NS.
// ---------------------------------------------------------------------------
template <precision::NsReal NS>
void fusedMomentumTendency(const HexMesh& m, const TrskWeights& trsk,
                           Index nedges, int nlev, const double* ke,
                           const double* qv, const double* flux,
                           const double* phi, const double* alpha,
                           const double* p, const double* div_u,
                           const double* vor, double nu_div, double nu_vor,
                           double* tend_u) {
  const auto mv = makeHostMeshView(m);
  const auto tv = makeHostTrskView(trsk);
#pragma omp parallel
  {
    // Per-level accumulator rows (arena-backed, heap-free when warm); the
    // shared body runs the Coriolis stencil j-outer / k-inner over them.
    common::Workspace& ws = common::Workspace::threadLocal();
    ws.reserve(2 * common::Workspace::bytesFor<NS>(nlev));
#pragma omp for schedule(static)
    for (Index e = 0; e < nedges; ++e) {
      const common::Workspace::Frame frame(ws);
      NS* qe_row = ws.get<NS>(nlev);
      NS* acc_row = ws.get<NS>(nlev);
      HostCtx ctx;
      bk::fusedMomentumTendency<NS>(ctx, e, mv, tv, nlev, hostView(ke),
                                    hostView(qv), hostView(flux), hostView(phi),
                                    hostView(alpha), hostView(p),
                                    hostView(div_u), hostView(vor), nu_div,
                                    nu_vor, hostMut(tend_u), qe_row, acc_row);
    }
  } // omp parallel
}

} // namespace grist::dycore::kernels
