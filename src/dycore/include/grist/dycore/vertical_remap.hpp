// Conservative vertical remapping for the vertically-Lagrangian layers.
// Within a dynamics interval the layers float (no cross-layer mass flux);
// strong divergence aloft can then drain individual layers toward zero
// thickness. Production mass-coordinate cores (GRIST included) periodically
// remap the state back to reference levels; this is that operator.
//
//  - dry mass:   new layers split (ps - ptop) uniformly (reference levels);
//  - theta and tracers: first-order conservative overlap integration
//    (mass-weighted means over the old layers intersecting each new layer);
//  - w: linear interpolation in the mass coordinate;
//  - phi: rebuilt hydrostatically from the remapped (delp, theta) columns
//    (the nonhydrostatic pressure perturbation resets at remap steps).
#pragma once

#include "grist/dycore/state.hpp"

namespace grist::dycore {

/// Remap every column of `state` (first `ncells` cells) back to uniform
/// reference delta-pi levels. Conserves column dry mass exactly and
/// mass-weighted theta / tracer integrals to rounding error.
void verticalRemap(Index ncells, int nlev, double ptop, State& state);

} // namespace grist::dycore
