// Dynamical-core run configuration. The defaults follow the paper's Table 2
// ratios: tracer transport runs on accumulated mass fluxes every
// `tracer_ratio` dynamics steps (Dyn:Trac = 4:30 in the paper).
#pragma once

#include <vector>

#include "grist/common/types.hpp"
#include "grist/precision/ns.hpp"

namespace grist::dycore {

struct DycoreConfig {
  int nlev = 30;          ///< vertical layers (Table 2 uses 30)
  double dt = 300.0;      ///< dynamics step, seconds
  int ntracers = 1;
  precision::NsMode ns = precision::NsMode::kDouble;

  double ptop = 225.0;    ///< model-top pressure, Pa (paper: 2.25 hPa)
  double p_surface = 1.0e5;

  /// Divergence damping coefficient (nondimensional; scaled by dx^2/dt).
  double div_damp = 0.02;
  /// Second-order horizontal diffusion coefficient for u/theta (same scaling).
  double diff_coef = 0.005;
  /// Rayleigh damping time scale for w near the model top, seconds
  /// (0 disables).
  double w_damp_tau = 0.0;

  /// Route the tendency sweeps through the SIMD backend's dispatch table
  /// (grist/backend/simd.hpp) when the runtime allows it; GRIST_SIMD=0
  /// still disables routing globally. Every tier is bitwise-identical to
  /// the HostBackend instantiation, so this only changes speed. false pins
  /// the pure Host path (the benchmarks' baseline side).
  bool use_simd = true;
};

/// Compute loop bounds: a global run computes on every entity; a
/// decomposed rank computes prognostics on owned entities and diagnostics
/// on the owned + first-ring band (see parallel::LocalDomain).
struct Bounds {
  Index cells_prog = 0;   ///< prognostic cell updates
  Index cells_diag = 0;   ///< diagnostic cell updates (>= cells_prog)
  Index edges_prog = 0;
  Index vertices_diag = 0;
};

/// Boundary/interior split of the prognostic entities, used for
/// communication-computation overlap: boundary entities are the ones some
/// neighbor rank reads (they must be updated before the halo messages are
/// posted); interior entities are updated while the messages are in flight.
/// The two cell lists must partition [0, cells_prog) and the two edge lists
/// [0, edges_prog); Dycore::setBands validates this. Since the prognostic
/// update loops are independent per entity, computing the bands in either
/// order is bit-identical to the contiguous sweep.
struct Bands {
  std::vector<Index> boundary_cells;
  std::vector<Index> interior_cells;
  std::vector<Index> boundary_edges;
  std::vector<Index> interior_edges;
};

} // namespace grist::dycore
