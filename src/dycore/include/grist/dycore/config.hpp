// Dynamical-core run configuration. The defaults follow the paper's Table 2
// ratios: tracer transport runs on accumulated mass fluxes every
// `tracer_ratio` dynamics steps (Dyn:Trac = 4:30 in the paper).
#pragma once

#include "grist/common/types.hpp"
#include "grist/precision/ns.hpp"

namespace grist::dycore {

struct DycoreConfig {
  int nlev = 30;          ///< vertical layers (Table 2 uses 30)
  double dt = 300.0;      ///< dynamics step, seconds
  int ntracers = 1;
  precision::NsMode ns = precision::NsMode::kDouble;

  double ptop = 225.0;    ///< model-top pressure, Pa (paper: 2.25 hPa)
  double p_surface = 1.0e5;

  /// Divergence damping coefficient (nondimensional; scaled by dx^2/dt).
  double div_damp = 0.02;
  /// Second-order horizontal diffusion coefficient for u/theta (same scaling).
  double diff_coef = 0.005;
  /// Rayleigh damping time scale for w near the model top, seconds
  /// (0 disables).
  double w_damp_tau = 0.0;
};

/// Compute loop bounds: a global run computes on every entity; a
/// decomposed rank computes prognostics on owned entities and diagnostics
/// on the owned + first-ring band (see parallel::LocalDomain).
struct Bounds {
  Index cells_prog = 0;   ///< prognostic cell updates
  Index cells_diag = 0;   ///< diagnostic cell updates (>= cells_prog)
  Index edges_prog = 0;
  Index vertices_diag = 0;
};

} // namespace grist::dycore
