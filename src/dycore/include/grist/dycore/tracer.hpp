// Passive tracer transport on accumulated mass fluxes with a monotone
// (Zalesak-style FCT) horizontal flux limiter -- the paper's
// tracer_transport_hori_flux_limiter kernel. Runs on the tracer timestep
// (Dyn:Trac = 4:30 in Table 2) using the time-mean mass flux the dycore
// accumulated in double precision.
#pragma once

#include "grist/grid/hex_mesh.hpp"
#include "grist/parallel/field.hpp"
#include "grist/precision/ns.hpp"

namespace grist::dycore {

struct TracerTransportArgs {
  const grid::HexMesh* mesh = nullptr;
  Index ncells_prog = 0;        ///< cells receiving the update
  int nlev = 0;
  double dt = 0;                ///< tracer step, seconds
  const double* mean_flux = nullptr;  ///< edges x nlev, time-mean delp*u*le
  const double* delp_old = nullptr;   ///< cells x nlev, at tracer-step start
  const double* delp_new = nullptr;   ///< cells x nlev, after the dyn steps
  /// Route through the SIMD dispatch table (bitwise-identical, see
  /// DycoreConfig::use_simd); false pins the HostBackend instantiation.
  bool use_simd = true;
};

/// Advance tracer mixing ratio q (cells x nlev) in place. The flux-limited
/// update is conservative in delp*q and produces no new extrema.
/// NS controls the precision of the limiter arithmetic; mass bookkeeping
/// stays double (paper section 3.4.2).
template <precision::NsReal NS>
void tracerTransportHoriFluxLimiter(const TracerTransportArgs& args, double* q);

/// Runtime dispatch helper.
void tracerTransport(const TracerTransportArgs& args, precision::NsMode ns,
                     double* q);

} // namespace grist::dycore
