// Ensemble-runner-private dycore kernels. The batched ensemble engine
// (ensemble_dycore.hpp) advances M members through the same step algebra as
// Dycore::stepImpl, but its private code path may restructure work as long
// as every member's state stays BITWISE identical to a solo Dycore run
// (tests/ensemble/test_ensemble_bitwise.cpp). Three such restructurings
// live here:
//
//  - rrrLite / rrrPOnly: compute_rrr without the dead outputs. In the
//    production step the Exner function and pi_mid written by compute_rrr
//    are never read again before the next recompute (they are consumed only
//    by the physics coupler, which runs its own compute_rrr), so the
//    tendency-phase calls need only (alpha, p) and the pre-solver call only
//    p. Skipping the Exner pow -- one of the two libm calls per element --
//    is the single largest win of the batched path, and is state-invisible
//    by construction.
//  - k-vectorized save/update/accumulate sweeps: the RK save and update
//    loops re-expressed with flat elementwise bodies (positivity branch as
//    a blend) so the vector TU can use wide IEEE div/min -- per-element
//    arithmetic identical to the scalar loops in Dycore::stepImpl.
//  - vertSolveMemberLanes: the vertical implicit (w, phi) solve with the
//    member index as the vector lane. The Thomas recurrence is sequential
//    in k but independent across columns; batching M members' copies of the
//    SAME cell turns the divide chain into lane-parallel IEEE divides.
//    Per-lane operation order matches backend::kernels::vertImplicitColumn
//    exactly, so each member's (w, phi) is bitwise the solo result.
//
// This TU is compiled with the AVX-512 flags (when the compiler has them)
// and -ffp-contract=off, mirroring the backend SIMD tier contract: wider
// registers only, no FMA contraction relative to the portable build.
#pragma once

#include "grist/common/types.hpp"
#include "grist/precision/ns.hpp"

namespace grist::dycore::ensemble_kernels {

/// compute_rrr restricted to the outputs the tendency phase reads: alpha
/// and p (Exner/pi_mid skipped). Bitwise identical to computeRrr's alpha/p
/// in both NS precisions.
void rrrLite(Index ncells, int nlev, const double* delp, const double* theta,
             const double* phi, double* alpha, double* p, precision::NsMode ns);

/// compute_rrr restricted to p alone (the only input the vertical implicit
/// solver reads). The pre-solver call is always double precision.
void rrrPOnly(Index ncells, int nlev, const double* delp, const double* theta,
              const double* phi, double* p);

/// RK step-start saves: delp0 = delp, thetam0 = delp * theta (cells) and
/// u0 = u (edges). Same arithmetic as the save loops in Dycore::stepImpl.
void saveCellStart(Index ncells, int nlev, const double* delp,
                   const double* theta, double* delp0, double* thetam0);
void saveEdgeStart(Index nedges, int nlev, const double* u, double* u0);

/// RK prognostic updates (positivity branch as a blend; division order per
/// element identical to the scalar loop).
void updateCells(Index ncells, int nlev, double dts, const double* delp0,
                 const double* thetam0, const double* delp_tend,
                 const double* thetam_tend, double* delp, double* theta);
void updateEdges(Index nedges, int nlev, double dts, const double* u0,
                 const double* u_tend, double* u);

/// acc += flux over an edge field (the tracer mass-flux accumulation).
void accumulateFlux(Index nedges, int nlev, const double* flux, double* acc);

/// Vertical implicit (w, phi) solve for `nmembers` members at once, member
/// index vectorized as the SIMD lane (blocks of up to 8 lanes). The arrays
/// are per-member pointers (member m's State fields and its pre-solver p);
/// per-lane arithmetic replicates backend::kernels::vertImplicitColumn
/// element-for-element.
void vertSolveMemberLanes(int nmembers, Index ncells, int nlev, double dt,
                          double ptop, const double* const* delp,
                          const double* const* theta, const double* const* p,
                          double* const* w, double* const* phi,
                          double w_damp_tau);

} // namespace grist::dycore::ensemble_kernels
