// Initial conditions for the paper's hierarchy of tests (section 3.4.2):
// a resting hydrostatic atmosphere, a baroclinic zonal jet with a
// perturbation (Jablonowski-Williamson-like), an idealized tropical
// cyclone vortex (Rotunno-Emanuel-like), and a warm bubble for
// small-planet nonhydrostatic tests.
#pragma once

#include "grist/dycore/config.hpp"
#include "grist/dycore/state.hpp"
#include "grist/grid/hex_mesh.hpp"

namespace grist::dycore {

/// Hydrostatically balanced isothermal-ish resting atmosphere: horizontally
/// uniform delp/theta, u = w = 0, phi integrated so that p == pi exactly
/// (the discrete rest state of this solver).
State initRestState(const grid::HexMesh& mesh, const DycoreConfig& config,
                    double t_surface = 300.0, int ntracers = 1);

/// Resting atmosphere over topography: surface geopotential phi_s = g*z_s
/// per cell, columns hydrostatically balanced above it (surface pressure is
/// reduced over high ground so mass-coordinate surfaces stay level). The
/// classic PGF-error test: flow spun up from this state is pure
/// discretization error.
State initRestStateOverTopography(const grid::HexMesh& mesh,
                                  const DycoreConfig& config,
                                  const std::vector<double>& surface_height_m,
                                  double t_surface = 300.0, int ntracers = 1);

/// Isolated Gaussian mountain (height peak_m, half-width halfwidth_m at
/// lon0/lat0) as a surface-height field for the topography tests.
std::vector<double> gaussianMountain(const grid::HexMesh& mesh, double lon0,
                                     double lat0, double peak_m,
                                     double halfwidth_m);

/// Baroclinic wave: a balanced zonal jet plus a localized streamfunction
/// perturbation that breaks into a growing wave (the JW06-style dycore
/// benchmark the paper uses in its precision hierarchy).
State initBaroclinicWave(const grid::HexMesh& mesh, const DycoreConfig& config,
                         int ntracers = 1);

/// Idealized tropical cyclone: warm-core gradient-balanced vortex at
/// (lon0, lat0) with maximum wind vmax (m/s) and size rm (m); moisture
/// tracer 0 initialized with a moist envelope so that physics can rain.
struct TyphoonParams {
  double lon0 = 2.35;     ///< ~135E, northwest Pacific
  double lat0 = 0.35;     ///< ~20N
  double vmax = 25.0;
  double rm = 250.0e3;
  double background_u = 4.0;  ///< weak westerly steering flow
};
State initTyphoon(const grid::HexMesh& mesh, const DycoreConfig& config,
                  const TyphoonParams& params = {}, int ntracers = 1);

/// Warm bubble on a (small) planet: theta anomaly of amplitude dtheta K and
/// radius rbubble (m) centered at (lon0, lat0) near the surface; drives a
/// nonhydrostatic updraft resolved by the vertical implicit solver.
State initWarmBubble(const grid::HexMesh& mesh, const DycoreConfig& config,
                     double dtheta = 2.0, double rbubble = 50.0e3,
                     int ntracers = 1);

} // namespace grist::dycore
