// Global diagnostics: conserved integrals and the field statistics the
// experiment harness reports (pattern correlation for Fig. 7/8, extrema for
// monotonicity checks).
#pragma once

#include <vector>

#include "grist/dycore/state.hpp"
#include "grist/grid/hex_mesh.hpp"

namespace grist::dycore {

/// Global dry-air mass, kg: sum delp * A / g.
double totalDryMass(const grid::HexMesh& mesh, const State& state);

/// Global tracer mass, kg: sum delp * q * A / g.
double totalTracerMass(const grid::HexMesh& mesh, const State& state, int tracer);

/// Mass-weighted potential temperature integral (conserved by advection).
double totalThetaMass(const grid::HexMesh& mesh, const State& state);

/// Global kinetic energy proxy: sum over edges of (le de / 2) delp_e u^2 / g.
double totalKineticEnergy(const grid::HexMesh& mesh, const State& state);

struct FieldExtrema {
  double min = 0, max = 0;
};
FieldExtrema tracerExtrema(const State& state, int tracer);

/// Area-weighted centered pattern correlation of two cell fields (the
/// spatial correlation metric the paper quotes for Fig. 7).
double patternCorrelation(const grid::HexMesh& mesh, const std::vector<double>& a,
                          const std::vector<double>& b);

/// Same, restricted to cells where mask[c] is true (e.g. the rainfall
/// verification region around the storm, like the paper's North China box).
double patternCorrelation(const grid::HexMesh& mesh, const std::vector<double>& a,
                          const std::vector<double>& b,
                          const std::vector<bool>& mask);

} // namespace grist::dycore
