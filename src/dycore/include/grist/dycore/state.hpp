// Prognostic and diagnostic model state on the hexagonal C-grid. Matches
// the six prognostic equations of the paper's Fig. 3: dry-air mass (delp),
// normal velocity (u), vertical velocity (w), potential temperature
// (theta), geopotential (phi) and tracer masses.
//
// Vertical indexing: k = 0 is the TOP layer; interfaces run k = 0 (model
// top) .. nlev (surface). Layers float in a Lagrangian sense within a
// dynamics step (no cross-layer mass flux), as in vertically-Lagrangian
// mass-coordinate cores.
#pragma once

#include <vector>

#include "grist/grid/hex_mesh.hpp"
#include "grist/parallel/field.hpp"

namespace grist::dycore {

struct State {
  int nlev = 0;

  parallel::Field delp;    ///< cells x nlev: dry mass per layer, Pa
  parallel::Field u;       ///< edges x nlev: normal velocity, m/s
  parallel::Field w;       ///< cells x (nlev+1): vertical velocity, m/s
  parallel::Field theta;   ///< cells x nlev: potential temperature, K
  parallel::Field phi;     ///< cells x (nlev+1): geopotential, m^2/s^2
  std::vector<parallel::Field> tracers;  ///< each cells x nlev: mixing ratio

  State() = default;
  State(const grid::HexMesh& mesh, int nlev_, int ntracers);

  /// Surface pressure diagnostic: ptop + sum_k delp (the paper's primary
  /// mixed-precision observation point "ps").
  std::vector<double> surfacePressure(double ptop) const;
};

} // namespace grist::dycore
