// The GRIST-style layer-averaged nonhydrostatic solver (paper section
// 3.1.2): horizontally explicit (3-stage Wicker-Skamarock Runge-Kutta on
// the vector-invariant equations), vertically implicit (per-column
// tridiagonal acoustic solve for w and phi). Mixed precision is selected at
// runtime via DycoreConfig::ns and dispatched to the templated kernels.
#pragma once

#include <functional>
#include <vector>

#include "grist/dycore/config.hpp"
#include "grist/dycore/state.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/parallel/field.hpp"

namespace grist::dycore {

class Dycore {
 public:
  /// The mesh and TRSK weights must outlive the Dycore. `bounds` restricts
  /// compute to a rank's owned/diagnostic entities; the default covers the
  /// whole mesh (single-domain run).
  Dycore(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
         DycoreConfig config);
  Dycore(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
         DycoreConfig config, Bounds bounds);

  /// Called after every internal stage update so decomposed runs can
  /// refresh halos of the five prognostic fields; single-domain runs pass
  /// nothing.
  using ExchangeFn = std::function<void(State&)>;

  /// Split-exchange hooks for communication-computation overlap. Each of
  /// the four exchange rounds of a step (3 RK stages + vertical solve)
  /// becomes: update boundary band -> post() -> update interior band ->
  /// wait(). post() packs and publishes this rank's outgoing halo data;
  /// wait() blocks until the incoming halo data is unpacked.
  struct OverlapHooks {
    std::function<void()> post;
    std::function<void()> wait;
  };

  /// Advance one dynamics step of config().dt seconds (three RK stages +
  /// one vertical implicit solve). `exchange`, when provided, is invoked
  /// after each stage and after the vertical solve.
  void step(State& state, const ExchangeFn& exchange = {});

  /// Overlapped step: requires setBands(); bitwise identical to the
  /// lockstep step (band order only permutes independent per-entity loops).
  void step(State& state, const OverlapHooks& hooks);

  /// Install the boundary/interior split of the prognostic entities
  /// (derived from the decomposition's exchange patterns). Throws if the
  /// lists do not exactly partition [0, cells_prog) / [0, edges_prog).
  void setBands(Bands bands);
  bool hasBands() const { return has_bands_; }

  /// Accumulated horizontal dry-mass flux (edges x nlev) since the last
  /// resetAccumulatedFlux(); always double precision (paper section 3.4.2:
  /// the mass flux delta-pi*V feeding tracer transport must stay double).
  const parallel::Field& accumulatedMassFlux() const { return acc_flux_; }
  /// Number of dynamics steps accumulated (to average the flux).
  int accumulatedSteps() const { return acc_steps_; }
  void resetAccumulatedFlux();
  /// Overwrite the flux accumulator window (checkpoint restore: a snapshot
  /// taken mid-tracer-window resumes bitwise). `flux` must be edges x nlev.
  void restoreAccumulatedFlux(const parallel::Field& flux, int steps);

  const DycoreConfig& config() const { return config_; }
  const Bounds& bounds() const { return bounds_; }

  /// Relative vorticity diagnostic at dual vertices for the current u
  /// (the paper's second mixed-precision observation point, "vor").
  std::vector<double> relativeVorticity(const State& state) const;

 private:
  template <typename NS>
  void stepImpl(State& state, const ExchangeFn& exchange,
                const OverlapHooks* hooks);

  template <typename NS>
  void computeTendencies(const State& state);

  const grid::HexMesh& mesh_;
  const grid::TrskWeights& trsk_;
  DycoreConfig config_;
  Bounds bounds_;
  Bands bands_;
  bool has_bands_ = false;

  // Scratch (allocated once), grouped by mesh entity; the constructor
  // asserts every field's size against its entity count.
  // Cell fields:
  parallel::Field div_flux_, ke_, alpha_, p_, exner_, pi_mid_, div_u_;
  parallel::Field thetam_tend_, delp_tend_;
  parallel::Field delp0_, thetam0_;  // step-start copies for RK
  // Edge fields:
  parallel::Field flux_, uflux_, u_tend_;
  parallel::Field u0_;  // step-start copy for RK
  parallel::Field acc_flux_;
  // Vertex fields:
  parallel::Field vor_, qv_;
  int acc_steps_ = 0;
};

} // namespace grist::dycore
