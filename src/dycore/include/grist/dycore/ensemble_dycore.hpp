// Batched dycore stepping for ensembles: advance M members' States through
// the SAME Wicker-Skamarock RK3 + implicit-column step as Dycore::stepImpl,
// sharing what a solo Dycore cannot: one set of transient scratch fields is
// reused across members (only the tracer mass-flux accumulator and the
// solver pressure are per-member), the tendency compute_rrr calls skip
// their dead Exner/pi_mid outputs, the RK save/update sweeps run through
// the k-vectorized ensemble kernels, and the vertical implicit solve is
// batched with the member index as the SIMD lane.
//
// The contract mirrors the rest of the repo's restructurings: every member
// stepped here is BITWISE identical to the same State stepped by a solo
// Dycore (ctest label ENSEMBLE), in both NS precisions, so ensemble runs
// inherit all existing parity machinery unchanged.
#pragma once

#include <vector>

#include "grist/dycore/config.hpp"
#include "grist/dycore/state.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/parallel/field.hpp"

namespace grist::dycore {

class EnsembleDycore {
 public:
  /// Shared mesh/TRSK are borrowed (caller keeps them alive); scratch is
  /// allocated once here, so warm steps are heap-free.
  EnsembleDycore(const grid::HexMesh& mesh, const grid::TrskWeights& trsk,
                 DycoreConfig config, int nmembers);

  /// Advance every member one dt. `states` holds `members()` pointers;
  /// members are stepped in index order through shared scratch, then the
  /// vertical implicit solve runs member-batched.
  void step(State* const* states);
  void step(std::vector<State>& states);

  int members() const { return nmembers_; }
  const DycoreConfig& config() const { return config_; }

  /// Tracer-transport coupling, per member (same semantics as Dycore's
  /// accumulator; members advance in lockstep so one step count serves all).
  const parallel::Field& accumulatedMassFlux(int m) const {
    return acc_flux_[static_cast<std::size_t>(m)];
  }
  int accumulatedSteps() const { return acc_steps_; }
  void resetAccumulatedFlux();

 private:
  template <typename NS>
  void stepImpl(State* const* states);
  template <typename NS>
  void computeTendencies(const State& state);

  const grid::HexMesh& mesh_;
  const grid::TrskWeights& trsk_;
  DycoreConfig config_;
  int nmembers_ = 0;

  // Transient scratch, shared across members (each member's iteration fully
  // rewrites what it reads). Exner/pi_mid are absent by design: the step
  // never reads them (see ensemble_kernels.hpp).
  parallel::Field div_flux_, ke_, alpha_, p_, div_u_;
  parallel::Field thetam_tend_, delp_tend_, delp0_, thetam0_;
  parallel::Field flux_, uflux_, u_tend_, u0_;
  parallel::Field vor_, qv_;

  // Per-member persistent fields: the mass-flux accumulator and the
  // pre-solver pressure feeding the member-batched implicit solve.
  std::vector<parallel::Field> acc_flux_;
  std::vector<parallel::Field> p_solve_;
  int acc_steps_ = 0;

  // Per-member pointer tables for the lane-batched solver (filled once).
  std::vector<const double*> solve_p_;
  std::vector<double*> solve_w_, solve_phi_;
  std::vector<const double*> solve_delp_, solve_theta_;
};

} // namespace grist::dycore
