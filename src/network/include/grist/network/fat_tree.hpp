// Analytic model of the next-generation Sunway interconnect (paper section
// 4.1): each node connects to a 304-port leaf switch (256 node ports, 48
// uplinks); the 256-node group is a "supernode"; supernodes connect through
// a 16:3-oversubscribed multilayer fat tree.
//
// Traffic inside a supernode sees full link bandwidth; traffic that leaves
// it shares the 48 uplinks (3/16 of node bandwidth), and above the second
// tier pays the oversubscription again. The tier thresholds are calibrated
// to the paper's observed scalability drop at 32,768 CGs (section 4.7).
#pragma once

#include "grist/common/types.hpp"

namespace grist::network {

struct FatTreeConfig {
  int cgs_per_node = 6;
  int nodes_per_supernode = 256;
  double link_bandwidth = 25.0e9;  ///< bytes/s per node port
  double hop_latency = 1.5e-6;     ///< seconds per switch hop
  double oversubscription = 16.0 / 3.0;

  /// Tier capacities in CGs: <= tier1 stays on one leaf switch; <= tier2
  /// crosses one oversubscribed layer; beyond crosses two. The second
  /// boundary is calibrated so the paper's Fig. 10 drop lands AT 32,768.
  Index tier1_cgs = 6 * 256;    // 1,536
  Index tier2_cgs = 16'384;

  /// Geometric fraction of a rank's halo traffic that leaves its supernode
  /// once more than one supernode is involved (boundary-to-area of a
  /// 1,536-rank compact region, ~2 sides exposed).
  double external_fraction = 0.2;
};

class FatTreeModel {
 public:
  explicit FatTreeModel(FatTreeConfig config = {}) : config_(config) {}

  /// Number of switch hops a message crosses at this machine scale.
  int hops(Index ncgs) const;

  /// Wall seconds for one halo-exchange call: every rank exchanges
  /// `bytes_per_rank` with `neighbors` neighbors (all ranks concurrently).
  double haloExchangeTime(Index ncgs, double bytes_per_rank, int neighbors) const;

  /// Wall seconds for a short allreduce (latency-dominated tree).
  double allreduceTime(Index ncgs) const;

  const FatTreeConfig& config() const { return config_; }

 private:
  FatTreeConfig config_;
};

} // namespace grist::network
