// SDPD projector: combines (a) per-cell dynamics cost curves measured on
// the SW26010P simulator (cache effects included -- this is where the
// strong-scaling plateau/bump of the paper's Fig. 11 comes from), (b) a
// physics cost model built on the FLOP/efficiency contrast the paper
// reports (RRTMG at ~6% of peak vs the ML modules at 74-84%), and (c) the
// fat-tree communication model, into simulated-days-per-day projections for
// the paper's grid ladder at the paper's process counts.
#pragma once

#include <functional>
#include <vector>

#include "grist/grid/counts.hpp"
#include "grist/network/fat_tree.hpp"

namespace grist::network {

struct SchemeCost {
  bool mixed_precision = false;
  bool ml_physics = false;
};

struct ProjectorConfig {
  FatTreeConfig fat_tree;
  double clock_ghz = 2.1;

  /// Dynamics cost: CPE-region cycles per (cell x level x dyn step) as a
  /// function of cells-per-CG, measured on the simulator and interpolated.
  /// Separate curves for double and mixed precision.
  std::function<double(double cells_per_cg)> dyn_cycles_dp;
  std::function<double(double cells_per_cg)> dyn_cycles_mix;

  /// Physics cost in cycles per (cell x level x PHYSICS step).
  /// Conventional: RRTMG-like flops at low efficiency. ML: ~2x flops at
  /// 74-84% of peak (paper section 4.7).
  double phys_cycles_conv = 2400.0;
  double phys_cycles_ml = 600.0;

  /// Timestep hierarchy (paper Table 2): physics every `phy_ratio` dynamics
  /// steps; halo exchanges per dynamics step; prognostic fields exchanged.
  int phy_ratio = 15;
  int exchanges_per_step = 4;
  int halo_fields = 5;
  int neighbors = 6;

  /// Load-imbalance wait folded into the observed "communication" share
  /// (the paper attributes the 19%->37% growth to both the rising number of
  /// communicating processes and computational load imbalance). Modeled as
  /// a fraction of compute time growing with each doubling of scale past
  /// the reference count.
  double imbalance_base = 0.12;
  double imbalance_per_doubling = 0.03;
  Index imbalance_ref_cgs = 128;

  /// Communication-computation overlap: fraction of the raw halo-exchange
  /// time hidden behind the interior-band dynamics sweep (the post/wait
  /// schedule of core::ParallelModel). The hideable window is bounded by
  /// the interior share of the dynamics sweep, (1 - boundary_fraction) of
  /// t_dyn, with boundary_fraction ~ perimeter/area = min(1, 4 sqrt(A)/A)
  /// for A = cells/CG: at kilometer scale (large A) nearly the whole
  /// exchange can hide; in the strong-scaling tail (A -> 16) the boundary
  /// band IS the domain and overlap buys nothing, which is the paper's
  /// Fig. 11 plateau story. 0 disables (default, preserving the
  /// lockstep projections); 1 is perfect overlap.
  double overlap_efficiency = 0.0;

  /// Serial per-step floor (MPE-side sequential work, kernel launches,
  /// barriers, vertical solves that do not shrink with the horizontal
  /// decomposition). Calibrated against the paper's G11S endpoint; this is
  /// what bounds the achievable SDPD as cells/CG -> 0.
  double fixed_step_seconds = 0.0;
  /// Share of the floor that is synchronization/launch wait rather than
  /// serial arithmetic -- counted into the reported communication share,
  /// matching how the paper's timers attribute in-exchange waiting.
  double fixed_comm_fraction = 0.25;
};

struct ScalingPoint {
  Index ncgs = 0;
  double sdpd = 0;
  double efficiency = 0;   ///< vs the series' reference point
  double comm_share = 0;   ///< communication fraction of step time
};

class SdpdProjector {
 public:
  explicit SdpdProjector(ProjectorConfig config);

  /// Wall time of one dynamics step (seconds) at this scale.
  double stepTime(int grid_level, int nlev, double dt, Index ncgs,
                  const SchemeCost& scheme, double* comm_share = nullptr) const;

  /// SDPD for a configuration.
  double sdpd(int grid_level, int nlev, double dt, Index ncgs,
              const SchemeCost& scheme) const;

  /// Weak scaling series (paper Fig. 10): the grid level grows with the
  /// process count so cells/CG stays fixed; efficiency vs the first point.
  std::vector<ScalingPoint> weakScaling(const std::vector<std::pair<int, Index>>& ladder,
                                        int nlev, double dt,
                                        const SchemeCost& scheme) const;

  /// Strong scaling series (paper Fig. 11): fixed grid, growing ncgs;
  /// efficiency normalized per eq. (2) of the paper.
  std::vector<ScalingPoint> strongScaling(int grid_level, int nlev, double dt,
                                          const std::vector<Index>& ncgs_list,
                                          const SchemeCost& scheme) const;

 private:
  ProjectorConfig config_;
  FatTreeModel net_;
};

/// Piecewise-linear interpolation helper for measured cost curves
/// (extrapolates with the last segment's slope: miss-dominated => linear).
std::function<double(double)> interpolateCostCurve(std::vector<double> cells_per_cg,
                                                   std::vector<double> cycles);

} // namespace grist::network
