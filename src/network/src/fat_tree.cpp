#include "grist/network/fat_tree.hpp"

#include <cmath>

namespace grist::network {

int FatTreeModel::hops(Index ncgs) const {
  if (ncgs <= config_.tier1_cgs) return 1;
  if (ncgs <= config_.tier2_cgs) return 3;  // leaf -> spine -> leaf
  return 5;                                 // two spine layers
}

double FatTreeModel::haloExchangeTime(Index ncgs, double bytes_per_rank,
                                      int neighbors) const {
  // Per-CG share of the node link.
  const double cg_bw = config_.link_bandwidth / config_.cgs_per_node;
  const double latency = neighbors * config_.hop_latency * hops(ncgs);
  if (ncgs <= config_.tier1_cgs) {
    return latency + bytes_per_rank / cg_bw;
  }
  // Split internal / external traffic; external shares the oversubscribed
  // uplinks. Above tier 2 the second spine layer doubles the contention.
  const double f_ext = config_.external_fraction;
  const double oversub =
      ncgs <= config_.tier2_cgs ? config_.oversubscription
                                : config_.oversubscription * config_.oversubscription;
  const double t_int = (1.0 - f_ext) * bytes_per_rank / cg_bw;
  const double t_ext = f_ext * bytes_per_rank * oversub / cg_bw;
  return latency + t_int + t_ext;
}

double FatTreeModel::allreduceTime(Index ncgs) const {
  if (ncgs <= 1) return 0.0;
  const double depth = std::ceil(std::log2(static_cast<double>(ncgs)));
  // Each reduction level is one message exchange; levels that cross the
  // oversubscribed layers pay extra hops.
  return 2.0 * depth * config_.hop_latency * hops(ncgs) / 3.0;
}

} // namespace grist::network
