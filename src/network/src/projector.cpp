#include "grist/network/projector.hpp"

#include <cmath>
#include <stdexcept>

namespace grist::network {

SdpdProjector::SdpdProjector(ProjectorConfig config)
    : config_(std::move(config)), net_(config_.fat_tree) {
  if (!config_.dyn_cycles_dp || !config_.dyn_cycles_mix) {
    throw std::invalid_argument("SdpdProjector: dynamics cost curves required");
  }
}

double SdpdProjector::stepTime(int grid_level, int nlev, double dt, Index ncgs,
                               const SchemeCost& scheme, double* comm_share) const {
  const auto counts = grid::countsForLevel(grid_level);
  const double cells_per_cg =
      static_cast<double>(counts.cells) / static_cast<double>(ncgs);
  if (cells_per_cg < 1.0) {
    throw std::invalid_argument("SdpdProjector: more CGs than cells");
  }

  // ---- computation ----
  const double hz = config_.clock_ghz * 1e9;
  const double dyn_cycles = scheme.mixed_precision
                                ? config_.dyn_cycles_mix(cells_per_cg)
                                : config_.dyn_cycles_dp(cells_per_cg);
  const double t_dyn = cells_per_cg * nlev * dyn_cycles / hz;
  const double phys_cycles =
      scheme.ml_physics ? config_.phys_cycles_ml : config_.phys_cycles_conv;
  const double t_phys =
      cells_per_cg * nlev * phys_cycles / hz / config_.phy_ratio;  // amortized

  // ---- communication ----
  // Halo cells of a compact region ~ perimeter: 4 sqrt(cells/CG) cells,
  // each carrying halo_fields x nlev doubles per exchange.
  const double halo_cells = 4.0 * std::sqrt(cells_per_cg);
  const double bytes =
      halo_cells * config_.halo_fields * nlev * 8.0;
  const double t_halo_raw =
      config_.exchanges_per_step *
      net_.haloExchangeTime(ncgs, bytes, config_.neighbors);
  // Overlap hides part of the exchange behind the interior-band dynamics
  // sweep; the hideable window is the interior share of t_dyn (the
  // boundary band must complete before the messages are posted).
  const double boundary_fraction =
      std::min(1.0, 4.0 * std::sqrt(cells_per_cg) / cells_per_cg);
  const double hidden =
      std::min(config_.overlap_efficiency * t_halo_raw,
               (1.0 - boundary_fraction) * t_dyn);
  const double t_halo = t_halo_raw - hidden;
  const double t_reduce = net_.allreduceTime(ncgs);
  // Load-imbalance wait shows up inside the exchange calls.
  const double doublings =
      ncgs > config_.imbalance_ref_cgs
          ? std::log2(static_cast<double>(ncgs) /
                      static_cast<double>(config_.imbalance_ref_cgs))
          : 0.0;
  const double t_wait =
      (t_dyn + t_phys) *
      (config_.imbalance_base + config_.imbalance_per_doubling * doublings);
  const double t_comm = t_halo + t_reduce + t_wait +
                        config_.fixed_comm_fraction * config_.fixed_step_seconds;
  const double total = t_dyn + t_phys + t_halo + t_reduce + t_wait +
                       config_.fixed_step_seconds;
  if (comm_share != nullptr) *comm_share = t_comm / total;
  (void)dt;
  return total;
}

double SdpdProjector::sdpd(int grid_level, int nlev, double dt, Index ncgs,
                           const SchemeCost& scheme) const {
  const double t_step = stepTime(grid_level, nlev, dt, ncgs, scheme);
  // Simulated seconds per wall second = dt / t_step; SDPD is the same ratio
  // in days.
  return dt / t_step;
}

std::vector<ScalingPoint> SdpdProjector::weakScaling(
    const std::vector<std::pair<int, Index>>& ladder, int nlev, double dt,
    const SchemeCost& scheme) const {
  std::vector<ScalingPoint> points;
  double ref_sdpd = 0;
  for (const auto& [level, ncgs] : ladder) {
    ScalingPoint p;
    p.ncgs = ncgs;
    stepTime(level, nlev, dt, ncgs, scheme, &p.comm_share);
    p.sdpd = sdpd(level, nlev, dt, ncgs, scheme);
    if (points.empty()) ref_sdpd = p.sdpd;
    // Paper eq. (1): eff_weak(N) = P_N / P_128 (same per-rank workload).
    p.efficiency = p.sdpd / ref_sdpd;
    points.push_back(p);
  }
  return points;
}

std::vector<ScalingPoint> SdpdProjector::strongScaling(
    int grid_level, int nlev, double dt, const std::vector<Index>& ncgs_list,
    const SchemeCost& scheme) const {
  std::vector<ScalingPoint> points;
  double ref_sdpd_per_cg = 0;
  for (const Index ncgs : ncgs_list) {
    ScalingPoint p;
    p.ncgs = ncgs;
    stepTime(grid_level, nlev, dt, ncgs, scheme, &p.comm_share);
    p.sdpd = sdpd(grid_level, nlev, dt, ncgs, scheme);
    if (points.empty()) {
      ref_sdpd_per_cg = p.sdpd / static_cast<double>(ncgs);
    }
    // Paper eq. (2): eff_strong(N) = (P_N / N) / (P_ref / N_ref).
    p.efficiency = (p.sdpd / static_cast<double>(ncgs)) / ref_sdpd_per_cg;
    points.push_back(p);
  }
  return points;
}

std::function<double(double)> interpolateCostCurve(std::vector<double> xs,
                                                   std::vector<double> ys) {
  if (xs.size() != ys.size() || xs.size() < 2) {
    throw std::invalid_argument("interpolateCostCurve: need >= 2 points");
  }
  for (std::size_t i = 1; i < xs.size(); ++i) {
    if (xs[i] <= xs[i - 1]) {
      throw std::invalid_argument("interpolateCostCurve: x must increase");
    }
  }
  return [xs = std::move(xs), ys = std::move(ys)](double x) {
    if (x <= xs.front()) return ys.front();
    for (std::size_t i = 1; i < xs.size(); ++i) {
      if (x <= xs[i]) {
        const double t = (x - xs[i - 1]) / (xs[i] - xs[i - 1]);
        return ys[i - 1] + t * (ys[i] - ys[i - 1]);
      }
    }
    // Extrapolate with the final slope.
    const std::size_t n = xs.size();
    const double slope = (ys[n - 1] - ys[n - 2]) / (xs[n - 1] - xs[n - 2]);
    return ys[n - 1] + slope * (x - xs[n - 1]);
  };
}

} // namespace grist::network
