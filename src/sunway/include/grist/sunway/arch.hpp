// Architectural parameters of the simulated SW26010P processor (paper
// section 3.3 and section 4.1): 6 core groups (CGs) per node, each CG one
// MPE + 64 CPEs in an 8x8 array; 256 KB LDM per CPE, half configurable as a
// 4-way set-associative LDCache; 16 GB DDR4 per CG at 51.2 GB/s.
//
// The latency/throughput table is a documented model, not measured silicon:
// it reproduces the *relative* behaviors the paper's Fig. 9 depends on
// (cache-way thrashing, SP vs DP divide latency, DMA vs cached access).
#pragma once

#include <cstddef>

namespace grist::sunway {

struct ArchParams {
  // Topology.
  int cpes_per_cg = 64;
  int cgs_per_node = 6;

  // Memory hierarchy.
  std::size_t ldm_bytes = 256 * 1024;      ///< per CPE
  std::size_t ldcache_bytes = 128 * 1024;  ///< half of LDM as cache
  int ldcache_ways = 4;
  std::size_t ldcache_line = 256;

  // Cycle costs (CPE).
  double cycles_flop_dp = 1.0;
  double cycles_flop_sp = 1.0;   ///< same ALU rate (paper section 4.6) ...
  double cycles_div_dp = 34.0;   ///< ... except divide and elementary
  double cycles_div_sp = 17.0;
  double cycles_elem_dp = 80.0;  ///< pow/exp/log
  double cycles_elem_sp = 40.0;
  double cycles_ldm_hit = 4.0;
  double cycles_cache_hit = 8.0;
  double cycles_mem_miss = 300.0;

  // DMA engine: startup + per-byte (derived from 51.2 GB/s at 2.1 GHz).
  double dma_startup_cycles = 270.0;
  double dma_cycles_per_byte = 2.1e9 / 51.2e9;

  // MPE: a conventional core with a larger private cache; the paper finds
  // MPE code compute-bound, so its miss penalty is partly hidden.
  std::size_t mpe_cache_bytes = 512 * 1024;
  int mpe_cache_ways = 8;
  double mpe_cycles_flop = 1.0;
  double mpe_miss_overlap = 0.5;  ///< fraction of miss latency hidden

  // Job server (SWGOMP Fig. 5): spawning a team/target region on CPEs.
  double job_spawn_cycles = 2000.0;
  double team_member_spawn_cycles = 60.0;

  double clock_ghz = 2.1;
};

} // namespace grist::sunway
