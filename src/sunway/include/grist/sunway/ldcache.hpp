// Set-associative LRU cache simulator: the LDCache half of a CPE's LDM.
// Fig. 6's failure mode lives here: arrays aligned to a multiple of the
// way size and accessed with similar indices map to the same set and evict
// one another when more arrays than ways are in flight.
#pragma once

#include <cstdint>
#include <vector>

namespace grist::sunway {

class LdCache {
 public:
  LdCache(std::size_t bytes, int ways, std::size_t line_bytes);

  /// Touch [addr, addr+size); returns the number of MISSED lines (an access
  /// can straddle a line boundary). Hits refresh LRU order.
  int access(std::uint64_t addr, std::size_t size);

  void reset();
  std::int64_t hits() const { return hits_; }
  std::int64_t misses() const { return misses_; }
  double hitRatio() const {
    const std::int64_t total = hits_ + misses_;
    return total == 0 ? 1.0 : static_cast<double>(hits_) / static_cast<double>(total);
  }
  int sets() const { return nsets_; }
  int ways() const { return ways_; }
  std::size_t lineBytes() const { return line_; }

 private:
  int ways_;
  std::size_t line_;
  int nsets_;
  // tags_[set*ways + k]; lru_[same] = age counter (smaller = older).
  std::vector<std::uint64_t> tags_;
  std::vector<std::uint64_t> lru_;
  std::uint64_t clock_ = 0;
  std::int64_t hits_ = 0, misses_ = 0;
};

} // namespace grist::sunway
