// One simulated compute processing element: a cycle counter driven by
// explicit load/store/arithmetic events, backed by its private LDCache and
// an LDM scratch region (the paper's device-stack / omnicopy target).
#pragma once

#include <cstdint>
#include <stdexcept>

#include "grist/sunway/arch.hpp"
#include "grist/sunway/ldcache.hpp"

namespace grist::sunway {

/// Precision of a simulated arithmetic event (mirrors precision::NsMode but
/// kept independent so the simulator has no model dependencies).
enum class SimPrecision { kDouble, kSingle };

class Cpe {
 public:
  explicit Cpe(const ArchParams& params)
      : params_(&params),
        cache_(params.ldcache_bytes, params.ldcache_ways, params.ldcache_line) {}

  // ---- memory events -----------------------------------------------------
  /// Cached main-memory access through the LDCache.
  void load(std::uint64_t addr, std::size_t size) {
    const int missed = cache_.access(addr, size);
    cycles_ += params_->cycles_cache_hit + missed * params_->cycles_mem_miss;
    bytes_ += size;
  }
  void store(std::uint64_t addr, std::size_t size) { load(addr, size); }

  /// LDM access (device stack / omnicopy destination): fixed low latency,
  /// never touches the cache.
  void ldmAccess(std::size_t size) {
    cycles_ += params_->cycles_ldm_hit;
    bytes_ += size;
  }

  /// DMA transfer between main memory and LDM.
  void dma(std::size_t bytes) {
    cycles_ += params_->dma_startup_cycles + bytes * params_->dma_cycles_per_byte;
    bytes_ += bytes;
  }

  /// LDM scratch allocation (bounded by the non-cache half of the LDM).
  void ldmAlloc(std::size_t bytes) {
    const std::size_t scratch = params_->ldm_bytes - params_->ldcache_bytes;
    if (ldm_used_ + bytes > scratch) {
      throw std::length_error("Cpe: LDM scratch exhausted");
    }
    ldm_used_ += bytes;
  }
  void ldmFree(std::size_t bytes) { ldm_used_ -= std::min(ldm_used_, bytes); }

  // ---- arithmetic events ---------------------------------------------------
  void flops(double n, SimPrecision p) {
    cycles_ += n * (p == SimPrecision::kDouble ? params_->cycles_flop_dp
                                               : params_->cycles_flop_sp);
    flops_ += n;
  }
  void divs(double n, SimPrecision p) {
    cycles_ += n * (p == SimPrecision::kDouble ? params_->cycles_div_dp
                                               : params_->cycles_div_sp);
    flops_ += n;
  }
  void elems(double n, SimPrecision p) {
    cycles_ += n * (p == SimPrecision::kDouble ? params_->cycles_elem_dp
                                               : params_->cycles_elem_sp);
    flops_ += n;
  }
  void idle(double cycles) { cycles_ += cycles; }

  // ---- accounting ----------------------------------------------------------
  double cycles() const { return cycles_; }
  double seconds() const { return cycles_ / (params_->clock_ghz * 1e9); }
  double flopCount() const { return flops_; }
  std::int64_t bytesTouched() const { return bytes_; }
  LdCache& cache() { return cache_; }
  const LdCache& cache() const { return cache_; }

  void reset() {
    cycles_ = 0;
    flops_ = 0;
    bytes_ = 0;
    ldm_used_ = 0;
    cache_.reset();
  }

 private:
  const ArchParams* params_;
  LdCache cache_;
  double cycles_ = 0;
  double flops_ = 0;
  std::int64_t bytes_ = 0;
  std::size_t ldm_used_ = 0;
};

} // namespace grist::sunway
