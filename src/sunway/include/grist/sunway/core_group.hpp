// One simulated core group: the MPE (a conventional compute-bound core with
// a larger cache) plus 64 CPEs, and the job-server bookkeeping of SWGOMP's
// Fig. 5 (MPE spawns team heads, team heads spawn members).
#pragma once

#include <memory>
#include <vector>

#include "grist/sunway/arch.hpp"
#include "grist/sunway/cpe.hpp"

namespace grist::sunway {

/// MPE model: compute-bound (paper section 4.6); part of every miss is
/// hidden behind arithmetic.
class Mpe {
 public:
  explicit Mpe(const ArchParams& params)
      : params_(&params),
        cache_(params.mpe_cache_bytes, params.mpe_cache_ways, params.ldcache_line) {}

  void load(std::uint64_t addr, std::size_t size) {
    const int missed = cache_.access(addr, size);
    cycles_ += params_->cycles_cache_hit +
               missed * params_->cycles_mem_miss * (1.0 - params_->mpe_miss_overlap);
  }
  void store(std::uint64_t addr, std::size_t size) { load(addr, size); }
  void flops(double n, SimPrecision) { cycles_ += n * params_->mpe_cycles_flop; }
  void divs(double n, SimPrecision p) {
    // The MPE pipeline is what makes DP vs SP nearly identical for bulk
    // arithmetic; divides keep their latency gap.
    cycles_ += n * (p == SimPrecision::kDouble ? params_->cycles_div_dp
                                               : params_->cycles_div_sp);
  }
  void elems(double n, SimPrecision p) {
    cycles_ += n * (p == SimPrecision::kDouble ? params_->cycles_elem_dp
                                               : params_->cycles_elem_sp);
  }

  double cycles() const { return cycles_; }
  void reset() {
    cycles_ = 0;
    cache_.reset();
  }

 private:
  const ArchParams* params_;
  LdCache cache_;
  double cycles_ = 0;
};

class CoreGroup {
 public:
  explicit CoreGroup(ArchParams params = {});

  ArchParams& params() { return params_; }
  const ArchParams& params() const { return params_; }

  Mpe& mpe() { return mpe_; }
  Cpe& cpe(int index) { return *cpes_.at(index); }
  int cpeCount() const { return static_cast<int>(cpes_.size()); }

  /// Job-server event: MPE launches a target region on a team head, which
  /// spawns the other team members. Adds the spawn overhead to every CPE.
  void spawnTeam();

  /// Finish a parallel region: every CPE waits for the slowest (implicit
  /// barrier); returns the region's cycle count.
  double joinTeam();

  /// Wall-clock seconds of the slowest CPE so far.
  double cpeSeconds() const;
  double maxCpeCycles() const;

  void reset();

 private:
  ArchParams params_;
  Mpe mpe_;
  std::vector<std::unique_ptr<Cpe>> cpes_;
};

} // namespace grist::sunway
