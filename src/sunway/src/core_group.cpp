#include "grist/sunway/core_group.hpp"

#include <algorithm>

namespace grist::sunway {

CoreGroup::CoreGroup(ArchParams params) : params_(params), mpe_(params_) {
  cpes_.reserve(params_.cpes_per_cg);
  for (int i = 0; i < params_.cpes_per_cg; ++i) {
    cpes_.push_back(std::make_unique<Cpe>(params_));
  }
}

void CoreGroup::spawnTeam() {
  // The team head pays the job-server spawn; members pay the fan-out cost.
  for (int i = 0; i < cpeCount(); ++i) {
    cpes_[i]->idle(i == 0 ? params_.job_spawn_cycles
                          : params_.team_member_spawn_cycles);
  }
}

double CoreGroup::joinTeam() {
  const double slowest = maxCpeCycles();
  for (auto& cpe : cpes_) cpe->idle(slowest - cpe->cycles());
  return slowest;
}

double CoreGroup::maxCpeCycles() const {
  double slowest = 0;
  for (const auto& cpe : cpes_) slowest = std::max(slowest, cpe->cycles());
  return slowest;
}

double CoreGroup::cpeSeconds() const {
  return maxCpeCycles() / (params_.clock_ghz * 1e9);
}

void CoreGroup::reset() {
  mpe_.reset();
  for (auto& cpe : cpes_) cpe->reset();
}

} // namespace grist::sunway
