#include "grist/sunway/ldcache.hpp"

#include <stdexcept>

namespace grist::sunway {

LdCache::LdCache(std::size_t bytes, int ways, std::size_t line_bytes)
    : ways_(ways), line_(line_bytes) {
  if (ways < 1 || line_bytes == 0 || bytes < ways * line_bytes) {
    throw std::invalid_argument("LdCache: bad geometry");
  }
  nsets_ = static_cast<int>(bytes / (static_cast<std::size_t>(ways) * line_bytes));
  if (nsets_ < 1) throw std::invalid_argument("LdCache: zero sets");
  tags_.assign(static_cast<std::size_t>(nsets_) * ways_, ~std::uint64_t{0});
  lru_.assign(tags_.size(), 0);
}

void LdCache::reset() {
  tags_.assign(tags_.size(), ~std::uint64_t{0});
  lru_.assign(lru_.size(), 0);
  clock_ = 0;
  hits_ = 0;
  misses_ = 0;
}

int LdCache::access(std::uint64_t addr, std::size_t size) {
  int missed = 0;
  const std::uint64_t first = addr / line_;
  const std::uint64_t last = (addr + (size ? size - 1 : 0)) / line_;
  for (std::uint64_t lineno = first; lineno <= last; ++lineno) {
    const int set = static_cast<int>(lineno % nsets_);
    const std::uint64_t tag = lineno / nsets_;
    const std::size_t base = static_cast<std::size_t>(set) * ways_;
    ++clock_;
    int found = -1;
    for (int w = 0; w < ways_; ++w) {
      if (tags_[base + w] == tag) {
        found = w;
        break;
      }
    }
    if (found >= 0) {
      ++hits_;
      lru_[base + found] = clock_;
      continue;
    }
    ++misses_;
    ++missed;
    // Evict the least recently used way.
    int victim = 0;
    for (int w = 1; w < ways_; ++w) {
      if (lru_[base + w] < lru_[base + victim]) victim = w;
    }
    tags_[base + victim] = tag;
    lru_[base + victim] = clock_;
  }
  return missed;
}

} // namespace grist::sunway
