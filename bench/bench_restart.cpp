// Checkpoint-layer throughput (google-benchmark): serialize + atomic-write
// and read + validate + rebuild of a full sectioned snapshot, in MB/s.
// These are NOT a paper figure; they size the restart tax against the
// paper's I/O budget (section 3.1.3 writes model output through grouped
// I/O for the same reason: at scale, snapshot bytes are the wall). Record
// to BENCH_restart.json via the GRIST_RESTART_BENCH=1 stage of
// scripts/check.sh; a committed baseline turns the run into a >5%
// regression gate through scripts/bench_compare.py.
//
// Every benchmark makes one untimed warm-up call before the timing loop so
// the first measured iteration sees a faulted-in page cache and a warm
// dentry for the checkpoint directory, not first-touch costs.
#include <benchmark/benchmark.h>

#include <filesystem>
#include <string>

#include "grist/core/checkpoint.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/snapshot.hpp"

namespace {

using namespace grist;

namespace fs = std::filesystem;

struct Fixture {
  grid::HexMesh mesh;
  dycore::DycoreConfig cfg;
  io::Snapshot snap;
  std::string dir, path;
  std::int64_t file_bytes = 0;

  explicit Fixture(int glevel, int nlev) : mesh(grid::buildHexMesh(glevel)) {
    cfg.nlev = nlev;
    cfg.dt = 450.0;
    snap = core::captureDynRun(dycore::initBaroclinicWave(mesh, cfg), cfg,
                               mesh.level, /*steps_done=*/0, /*nranks=*/1,
                               /*partition_fingerprint=*/0);
    dir = (fs::temp_directory_path() /
           ("grist_bench_restart_g" + std::to_string(glevel)))
              .string();
    fs::create_directories(dir);
    path = dir + "/snap.grist";
    snap.write(path);  // warm-up + gives read benchmarks a file
    file_bytes = static_cast<std::int64_t>(fs::file_size(path));
  }
  ~Fixture() { fs::remove_all(dir); }
};

// One fixture per grid so repeated benchmark registrations share the
// serialized state instead of re-running the init.
Fixture& fixtureFor(int glevel) {
  static Fixture g4{4, 30};
  static Fixture g5{5, 30};
  return glevel == 5 ? g5 : g4;
}

void BM_SnapshotWrite(benchmark::State& state) {
  Fixture& f = fixtureFor(static_cast<int>(state.range(0)));
  for (auto _ : state) {
    f.snap.write(f.path);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          f.file_bytes);
  state.counters["file_MB"] =
      static_cast<double>(f.file_bytes) / (1024.0 * 1024.0);
}
BENCHMARK(BM_SnapshotWrite)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_SnapshotRead(benchmark::State& state) {
  // Read + per-section CRC validation + section parse into host vectors.
  Fixture& f = fixtureFor(static_cast<int>(state.range(0)));
  {
    const io::Snapshot warm = io::Snapshot::read(f.path);
    benchmark::DoNotOptimize(warm.state->delp.data());
  }
  for (auto _ : state) {
    const io::Snapshot snap = io::Snapshot::read(f.path);
    benchmark::DoNotOptimize(snap.state->delp.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          f.file_bytes);
}
BENCHMARK(BM_SnapshotRead)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_RestartLoad(benchmark::State& state) {
  // The full resume path a rank worker runs: read + validate CONFIG/shape
  // + rebuild a mesh-shaped State (what MpSession workers do per process).
  Fixture& f = fixtureFor(static_cast<int>(state.range(0)));
  {
    const dycore::State warm =
        core::loadDynRestart(f.path, f.mesh, f.cfg, 1, nullptr);
    benchmark::DoNotOptimize(warm.delp.data());
  }
  for (auto _ : state) {
    const dycore::State restored =
        core::loadDynRestart(f.path, f.mesh, f.cfg, 1, nullptr);
    benchmark::DoNotOptimize(restored.delp.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          f.file_bytes);
}
BENCHMARK(BM_RestartLoad)->Arg(4)->Arg(5)->Unit(benchmark::kMillisecond);

void BM_CheckpointRotation(benchmark::State& state) {
  // writeCheckpoint = serialize + atomic rename + keep-last-2 prune; the
  // steady-state cost of `--checkpoint-every K` in grist_run.
  Fixture& f = fixtureFor(static_cast<int>(state.range(0)));
  const std::string ckdir = f.dir + "/rot";
  long step = 0;
  io::writeCheckpoint(ckdir, f.snap, step++);  // warm-up
  for (auto _ : state) {
    io::writeCheckpoint(ckdir, f.snap, step++);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          f.file_bytes);
  fs::remove_all(ckdir);
}
BENCHMARK(BM_CheckpointRotation)->Arg(4)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
