// Ablation: the halo-exchange transport and step schedule.
//
// (1) Batched vs per-variable exchange (paper section 3.1.3: "a linked
//     list is utilized to gather variables for exchange, and a single call
//     to the communication interface efficiently completes the data
//     exchange for all listed variables"): identical bytes, very different
//     message counts.
// (2) Packed vs unpacked transport: per-pattern contiguous message buffers
//     (pack -> one transfer -> unpack) against the seed's element-wise
//     gather/scatter.
// (3) Overlap-off vs overlap-on step schedules on the Fig. 10 weak-scaling
//     configuration (~320 cells/rank): the seed schedule (per-step thread
//     spawn + unpacked exchange), the pooled lockstep schedule (persistent
//     workers + packed collective exchange), and the pooled overlapped
//     schedule (boundary-first sweeps + post/wait exchange).
// (4) Transport: the same overlapped step with ranks as THREADS of this
//     process vs as OS PROCESSES over the POSIX shm transport (BM_StepShm*,
//     with and without core pinning and the emulated wire). This binary
//     fork+execs itself as the rank workers, so worker dispatch runs first
//     in main().
//
// The BM_Exchange*/BM_Step* pairs emit the standard google-benchmark JSON
// with --benchmark_format=json (same schema as the bench_host_kernels
// pairs); the narrative tables print first. scripts/check.sh records the
// pairs to BENCH_exchange_schedules.json under GRIST_EXCHANGE_BENCH=1.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <string>
#include <vector>

#include "grist/core/mp_runner.hpp"
#include "grist/core/parallel_model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/table.hpp"
#include "grist/network/fat_tree.hpp"
#include "grist/parallel/exchange.hpp"

namespace {

using namespace grist;

// ---------------------------------------------------------------------------
// Exchange-transport fixture: the seed ablation configuration (G5 mesh, 16
// ranks, 8 cell variables x 30 levels).
// ---------------------------------------------------------------------------
struct ExchangeFixture {
  grid::HexMesh mesh = grid::buildHexMesh(5);
  Index nranks = 16;
  parallel::Decomposition decomp = parallel::decompose(mesh, nranks);
  int nlev = 30;
  int nvars = 8;
  std::vector<std::vector<parallel::Field>> vars;
  std::vector<parallel::ExchangeList> lists;

  ExchangeFixture() {
    vars.resize(nvars);
    for (int v = 0; v < nvars; ++v) {
      for (Index r = 0; r < nranks; ++r) {
        vars[v].emplace_back(decomp.domains[r].mesh.ncells, nlev, 1.0 + v);
      }
    }
    lists.resize(nranks);
    for (Index r = 0; r < nranks; ++r) {
      for (int v = 0; v < nvars; ++v) lists[r].addCellField(vars[v][r]);
    }
  }
};

ExchangeFixture& exchangeFixture() {
  static ExchangeFixture f;
  return f;
}

void BM_ExchangeUnpacked(benchmark::State& state) {
  ExchangeFixture& f = exchangeFixture();
  parallel::Communicator comm(f.decomp);
  for (auto _ : state) {
    comm.exchangeUnpacked(f.lists);
    benchmark::DoNotOptimize(f.vars[0][0].data());
  }
  state.SetBytesProcessed(state.iterations() *
                          (comm.stats().bytes / comm.stats().exchanges));
}

void BM_ExchangePacked(benchmark::State& state) {
  ExchangeFixture& f = exchangeFixture();
  parallel::Communicator comm(f.decomp);
  for (auto _ : state) {
    comm.exchange(f.lists);
    benchmark::DoNotOptimize(f.vars[0][0].data());
  }
  state.SetBytesProcessed(state.iterations() *
                          (comm.stats().bytes / comm.stats().exchanges));
}

// ---------------------------------------------------------------------------
// Step-schedule fixture: the measured point of the Fig. 10 weak-scaling
// ladder this host can hold (G4 mesh, 8 ranks, ~320 cells/rank, nlev 10,
// dt 240) -- the same configuration bench_fig10_weak_scaling measures.
// ---------------------------------------------------------------------------
struct StepFixture {
  grid::HexMesh mesh = grid::buildHexMesh(4);
  grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  dycore::DycoreConfig cfg;
  Index nranks = 8;
  double wire_tau = 0.0;  ///< emulated interconnect latency per round (s)

  StepFixture() {
    cfg.nlev = 10;
    cfg.dt = 240.0;
    // The in-process transport delivers instantly; the machine the Fig. 10
    // rung emulates does not. Price one exchange round of this rung's
    // actual per-rank halo traffic on the fat-tree model at the paper's
    // full 524,288-CG scale and use it as the emulated wire latency.
    const dycore::State init = dycore::initBaroclinicWave(mesh, cfg);
    core::ParallelModel probe(mesh, trsk, cfg, nranks, init);
    probe.step();
    const parallel::CommStats s = probe.commStats();
    const double bytes_per_rank =
        static_cast<double>(s.bytes) / s.exchanges / nranks;
    wire_tau = network::FatTreeModel().haloExchangeTime(524288, bytes_per_rank, 6);
  }
};

StepFixture& stepFixture() {
  static StepFixture f;
  return f;
}

void benchStep(benchmark::State& state, core::ParallelModel::Schedule sched,
               double wire_latency) {
  StepFixture& f = stepFixture();
  const dycore::State init = dycore::initBaroclinicWave(f.mesh, f.cfg);
  core::ParallelModel model(f.mesh, f.trsk, f.cfg, f.nranks, init);
  model.setSchedule(sched);
  model.setWireLatency(wire_latency);
  model.step();  // warm-up: pool, OpenMP teams, Workspace arenas
  for (auto _ : state) {
    model.step();
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.cfg.nlev);
}

// Instant in-process delivery: isolates schedule overhead (thread churn,
// barriers, copies). On a host with fewer cores than ranks the compute
// serializes, so the three only differ by that overhead.
void BM_StepSeedSpawnUnpacked(benchmark::State& state) {
  benchStep(state, core::ParallelModel::Schedule::kSpawnUnpacked, 0.0);
}
void BM_StepLockstepPacked(benchmark::State& state) {
  benchStep(state, core::ParallelModel::Schedule::kLockstep, 0.0);
}
void BM_StepOverlapPacked(benchmark::State& state) {
  benchStep(state, core::ParallelModel::Schedule::kOverlap, 0.0);
}

// Emulated interconnect (wire latency from the fat-tree model at full
// machine scale): blocking schedules stall one latency window per exchange
// round; the overlapped schedule runs interior compute under it.
void BM_StepSeedSpawnUnpackedWire(benchmark::State& state) {
  benchStep(state, core::ParallelModel::Schedule::kSpawnUnpacked,
            stepFixture().wire_tau);
}
void BM_StepLockstepPackedWire(benchmark::State& state) {
  benchStep(state, core::ParallelModel::Schedule::kLockstep,
            stepFixture().wire_tau);
}
void BM_StepOverlapPackedWire(benchmark::State& state) {
  benchStep(state, core::ParallelModel::Schedule::kOverlap,
            stepFixture().wire_tau);
}

// ---------------------------------------------------------------------------
// Transport ablation: the same overlapped step with one OS process per rank
// over the shm transport. Identical kernels, identical exchanged bytes
// (bitwise-identical states, see tests/multiprocess/); what changes hands
// is the address-space boundary and the doorbell primitive (futexes on
// mapped words instead of in-process atomics).
// ---------------------------------------------------------------------------
void benchStepShm(benchmark::State& state, bool pin, double wire_latency) {
  StepFixture& f = stepFixture();
  core::mp::RunSpec spec;
  spec.grid_level = 4;
  spec.nlev = f.cfg.nlev;
  spec.dt = f.cfg.dt;
  spec.nranks = f.nranks;
  spec.pin = pin;
  spec.wire_latency = wire_latency;
  core::mp::MpSession session(spec);
  session.run(1);  // warm-up: fleet up, plans live, slots recycled
  for (auto _ : state) {
    session.run(1);
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.cfg.nlev);
}

void BM_StepShmOverlap(benchmark::State& state) {
  benchStepShm(state, /*pin=*/false, 0.0);
}
void BM_StepShmOverlapPinned(benchmark::State& state) {
  benchStepShm(state, /*pin=*/true, 0.0);
}
void BM_StepShmOverlapWire(benchmark::State& state) {
  benchStepShm(state, /*pin=*/false, stepFixture().wire_tau);
}

// ---------------------------------------------------------------------------
// Narrative tables (printed before the google-benchmark runs).
// ---------------------------------------------------------------------------
void printBatchingTable() {
  std::printf("== Ablation: halo-exchange transport and step schedule ==\n\n");
  std::printf("-- batched vs per-variable exchange (message counts) --\n\n");
  ExchangeFixture& f = exchangeFixture();
  parallel::Communicator comm(f.decomp);

  comm.exchange(f.lists);
  const parallel::CommStats batched = comm.stats();

  comm.resetStats();
  for (int v = 0; v < f.nvars; ++v) {
    std::vector<parallel::ExchangeList> single(f.nranks);
    for (Index r = 0; r < f.nranks; ++r) single[r].addCellField(f.vars[v][r]);
    comm.exchange(single);
  }
  const parallel::CommStats pervar = comm.stats();

  io::Table table({"Strategy", "Messages/step", "Bytes/step"});
  table.addRow({"one batched call",
                io::Table::num(static_cast<double>(batched.messages), 0),
                io::Table::num(static_cast<double>(batched.bytes), 0)});
  table.addRow({"per-variable calls",
                io::Table::num(static_cast<double>(pervar.messages), 0),
                io::Table::num(static_cast<double>(pervar.bytes), 0)});
  table.print();

  // Project the latency cost at machine scale through the fat-tree model.
  const network::FatTreeModel net;
  const double msg_bytes = static_cast<double>(batched.bytes) / batched.messages;
  const double t_one = net.haloExchangeTime(524288, msg_bytes * 6, 6);
  const double t_many =
      f.nvars * net.haloExchangeTime(524288, msg_bytes * 6 / f.nvars, 6);
  std::printf(
      "\nAt 524,288 CGs the fat-tree model prices the same traffic at\n"
      "%.1f us (batched) vs %.1f us (per-variable) per step: the %dx\n"
      "message-count reduction is what keeps the latency term flat in the\n"
      "paper's weak-scaling curve.\n\n",
      t_one * 1e6, t_many * 1e6, f.nvars);
  std::printf(
      "-- schedules below run the Fig. 10 measured configuration (G4,\n"
      "   8 ranks, ~320 cells/rank): BM_StepSeedSpawnUnpacked is the seed\n"
      "   lockstep baseline; BM_StepOverlapPacked is the full overlap\n"
      "   schedule. All schedules produce bitwise-identical states (see\n"
      "   tests/core/test_parallel_model.cpp).\n"
      "   The *Wire variants emulate the interconnect this rung stands in\n"
      "   for: the fat-tree model prices one round of this rung's per-rank\n"
      "   halo traffic at the full 524,288-CG scale at %.1f us, and posted\n"
      "   messages only become consumable that much later. Blocking\n"
      "   schedules stall 4 windows per step; the overlapped schedule\n"
      "   computes its interior band under them. --\n\n",
      stepFixture().wire_tau * 1e6);
  std::printf(
      "-- the BM_StepShm* variants run the SAME overlapped step with one\n"
      "   OS process per rank over the POSIX shm transport (pack buffers in\n"
      "   the mapped segment, futex doorbells): the transport ablation of\n"
      "   DESIGN.md. States stay bitwise identical to the threaded pool\n"
      "   (tests/multiprocess/). --\n\n");
}

} // namespace

BENCHMARK(BM_ExchangeUnpacked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_ExchangePacked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepSeedSpawnUnpacked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepLockstepPacked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepOverlapPacked)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepSeedSpawnUnpackedWire)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepLockstepPackedWire)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepOverlapPackedWire)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepShmOverlap)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepShmOverlapPinned)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_StepShmOverlapWire)->Unit(benchmark::kMillisecond);

int main(int argc, char** argv) {
  // The BM_StepShm* fixtures fork+exec this binary as their rank workers.
  if (auto rc = grist::core::mp::maybeRunWorker(argc, argv)) return *rc;
  printBatchingTable();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
