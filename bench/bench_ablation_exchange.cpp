// Ablation: the batched halo exchange of paper section 3.1.3 ("a linked
// list is utilized to gather variables for exchange, and a single call to
// the communication interface efficiently completes the data exchange for
// all listed variables"). Compares one batched call against per-variable
// calls: identical bytes, very different message counts and wall time.
#include <cstdio>

#include "grist/common/timer.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/table.hpp"
#include "grist/network/fat_tree.hpp"
#include "grist/parallel/exchange.hpp"

using namespace grist;

int main() {
  std::printf("== Ablation: batched vs per-variable halo exchange ==\n\n");
  const grid::HexMesh mesh = grid::buildHexMesh(5);
  const Index nranks = 16;
  const parallel::Decomposition decomp = parallel::decompose(mesh, nranks);
  const int nlev = 30, nvars = 8;

  // One block of per-rank fields per variable.
  std::vector<std::vector<parallel::Field>> vars(nvars);
  for (int v = 0; v < nvars; ++v) {
    for (Index r = 0; r < nranks; ++r) {
      vars[v].emplace_back(decomp.domains[r].mesh.ncells, nlev, 1.0 + v);
    }
  }

  const int reps = 50;
  parallel::Communicator comm(decomp);

  // Batched: all variables in one exchange call.
  Timer batched_timer;
  for (int rep = 0; rep < reps; ++rep) {
    std::vector<parallel::ExchangeList> lists(nranks);
    for (Index r = 0; r < nranks; ++r) {
      for (int v = 0; v < nvars; ++v) lists[r].addCellField(vars[v][r]);
    }
    comm.exchange(lists);
  }
  const double t_batched = batched_timer.elapsed() / reps;
  const parallel::CommStats batched = comm.stats();

  comm.resetStats();
  Timer pervar_timer;
  for (int rep = 0; rep < reps; ++rep) {
    for (int v = 0; v < nvars; ++v) {
      std::vector<parallel::ExchangeList> lists(nranks);
      for (Index r = 0; r < nranks; ++r) lists[r].addCellField(vars[v][r]);
      comm.exchange(lists);
    }
  }
  const double t_pervar = pervar_timer.elapsed() / reps;
  const parallel::CommStats pervar = comm.stats();

  io::Table table({"Strategy", "Messages/step", "Bytes/step", "Wall/step (ms)"});
  table.addRow({"one batched call",
                io::Table::num(static_cast<double>(batched.messages) / reps, 0),
                io::Table::num(static_cast<double>(batched.bytes) / reps, 0),
                io::Table::num(t_batched * 1e3, 3)});
  table.addRow({"per-variable calls",
                io::Table::num(static_cast<double>(pervar.messages) / reps, 0),
                io::Table::num(static_cast<double>(pervar.bytes) / reps, 0),
                io::Table::num(t_pervar * 1e3, 3)});
  table.print();

  // Project the latency cost at machine scale through the fat-tree model.
  const network::FatTreeModel net;
  const double msg_bytes = static_cast<double>(batched.bytes) / batched.messages;
  const double t_one = net.haloExchangeTime(524288, msg_bytes * 6, 6);
  const double t_many = nvars * net.haloExchangeTime(524288, msg_bytes * 6 / nvars, 6);
  std::printf(
      "\nAt 524,288 CGs the fat-tree model prices the same traffic at\n"
      "%.1f us (batched) vs %.1f us (per-variable) per step: the %dx\n"
      "message-count reduction is what keeps the latency term flat in the\n"
      "paper's weak-scaling curve.\n",
      t_one * 1e6, t_many * 1e6, nvars);
  return 0;
}
