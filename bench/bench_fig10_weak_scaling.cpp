// Fig. 10 reproduction: weak scaling from 128 to 524,288 processes (CGs).
// The grid level rises with the process count so every CG keeps the same
// ~320 cells (the paper keeps vertices per CG fixed and reuses the G12
// timestep everywhere). Two parts:
//   (1) MEASURED: in-process multi-rank runs on this host validate that the
//       real code's communication volume behaves as decomposition predicts;
//   (2) PROJECTED: simulator cost curves + fat-tree model reproduce the
//       paper's efficiency/comm-share series, including the drop at 32,768
//       CGs from fat-tree bandwidth oversubscription.
#include <cstdio>

#include "grist/core/parallel_model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/table.hpp"
#include "scaling_common.hpp"

using namespace grist;

namespace {

void measuredPart() {
  std::printf(
      "-- measured: in-process weak scaling on this host (fixed ~320\n"
      "   cells/rank; communication bytes per rank-step from the real\n"
      "   batched halo exchange) --\n\n");
  io::Table table({"Ranks", "Grid", "Cells/rank", "Comm bytes/rank/step",
                   "Messages/step"});
  // level/rank ladder with cells/rank ~ 320 on meshes this host can hold.
  const std::pair<int, Index> ladder[] = {{3, 2}, {4, 8}, {5, 32}};
  for (const auto& [level, nranks] : ladder) {
    const grid::HexMesh mesh = grid::buildHexMesh(level);
    const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
    dycore::DycoreConfig cfg;
    cfg.nlev = 10;
    cfg.dt = 240.0;
    const dycore::State init = dycore::initBaroclinicWave(mesh, cfg);
    core::ParallelModel model(mesh, trsk, cfg, nranks, init);
    const auto before = model.commStats();
    const int nsteps = 3;
    model.run(nsteps);
    const auto after = model.commStats();
    const double bytes_per_rank_step =
        static_cast<double>(after.bytes - before.bytes) / nsteps / nranks;
    const double msgs_per_step =
        static_cast<double>(after.messages - before.messages) / nsteps;
    table.addRow({std::to_string(nranks), "G" + std::to_string(level),
                  std::to_string(mesh.ncells / nranks),
                  io::Table::num(bytes_per_rank_step, 0),
                  io::Table::num(msgs_per_step, 0)});
  }
  table.print();
  std::printf("\n");
}

} // namespace

int main() {
  std::printf("== Fig. 10: weak scaling of the model ==\n\n");
  measuredPart();

  const bench::CalibratedProjector cal = bench::makeCalibratedProjector(true);
  network::SdpdProjector proj(cal.config);

  // The paper's ladder: starting from G6 at 128 CGs, each resolution
  // doubling quadruples the process count; all runs use the G12 timestep
  // (4 s) so cost depends only on the grid count.
  const std::vector<std::pair<int, Index>> ladder = {
      {6, 128},     {7, 512},     {8, 2048},   {9, 8192},
      {10, 32768},  {11, 131072}, {12, 524288}};

  for (const bool use_ml : {false, true}) {
    network::SchemeCost scheme{.mixed_precision = true, .ml_physics = use_ml};
    std::printf("-- projected series: %s --\n", use_ml ? "MIX-ML" : "MIX-PHY");
    const auto points = proj.weakScaling(ladder, 30, 4.0, scheme);
    io::Table table({"Processes", "Grid", "SDPD", "Weak efficiency", "Comm share"});
    for (std::size_t i = 0; i < points.size(); ++i) {
      table.addRow({std::to_string(points[i].ncgs),
                    "G" + std::to_string(ladder[i].first),
                    io::Table::num(points[i].sdpd, 1),
                    io::Table::num(points[i].efficiency, 3),
                    io::Table::num(points[i].comm_share, 3)});
    }
    table.print();
    std::printf("\n");
  }

  // Overlap-aware projection: the boundary-first post/wait schedule hides
  // halo latency behind the interior sweep, bounded by the interior share
  // of the dynamics time (at ~16 cells/CG the boundary IS the domain and
  // nothing can hide -- the Fig. 11 strong-scaling plateau).
  {
    network::SchemeCost scheme{.mixed_precision = true, .ml_physics = false};
    network::ProjectorConfig overlap_cfg = cal.config;
    overlap_cfg.overlap_efficiency = 1.0;
    network::SdpdProjector overlap_proj(overlap_cfg);
    std::printf("-- projected series: MIX-PHY, overlapped schedule --\n");
    const auto lock = proj.weakScaling(ladder, 30, 4.0, scheme);
    const auto over = overlap_proj.weakScaling(ladder, 30, 4.0, scheme);
    io::Table table({"Processes", "SDPD lockstep", "SDPD overlap",
                     "Comm share lockstep", "Comm share overlap"});
    for (std::size_t i = 0; i < lock.size(); ++i) {
      table.addRow({std::to_string(lock[i].ncgs),
                    io::Table::num(lock[i].sdpd, 1),
                    io::Table::num(over[i].sdpd, 1),
                    io::Table::num(lock[i].comm_share, 3),
                    io::Table::num(over[i].comm_share, 3)});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Paper anchors (section 4.7): comm share rises 19%% -> 37%% across the\n"
      "series; a clear scalability drop appears at 32,768 CGs (fat-tree\n"
      "bandwidth oversubscription); MIX-ML outperforms MIX-PHY throughout\n"
      "(ML physics runs dense arithmetic at 74-84%% of peak vs 6%% for RRTMG).\n"
      "The overlapped schedule hides the per-round halo latency behind the\n"
      "interior sweep; the residual comm share is load imbalance plus the\n"
      "unhidable part, which grows as the interior band shrinks.\n");
  return 0;
}
