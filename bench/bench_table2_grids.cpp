// Table 2 reproduction: grid/timestep configurations of the paper's
// experiment ladder. Counts come from the analytic formulas (verified
// against built meshes up to G6 right here); resolutions use the
// sqrt-cell-area metric the paper quotes.
#include <cstdio>
#include <string>

#include "grist/grid/counts.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/io/table.hpp"

namespace {

std::string human(std::int64_t n) {
  char buf[32];
  if (n >= 10'000'000) {
    std::snprintf(buf, sizeof buf, "%.0fM", n / 1e6);
  } else if (n >= 1'000'000) {
    std::snprintf(buf, sizeof buf, "%.1fM", n / 1e6);
  } else if (n >= 10'000) {
    std::snprintf(buf, sizeof buf, "%.0fK", n / 1e3);
  } else {
    std::snprintf(buf, sizeof buf, "%lld", static_cast<long long>(n));
  }
  return buf;
}

struct Row {
  const char* label;
  int level;
  int layers;
  int dyn, trac, phy, rad;  // timesteps, seconds
};

} // namespace

int main() {
  using namespace grist;
  std::printf("== Table 2: configuration of grids and timesteps ==\n\n");

  const Row rows[] = {
      {"G12", 12, 30, 4, 30, 60, 180},  {"G11W", 11, 30, 4, 30, 60, 180},
      {"G11S", 11, 30, 8, 60, 120, 360}, {"G10", 10, 30, 4, 30, 60, 180},
      {"G9", 9, 30, 4, 30, 60, 180},     {"G8", 8, 30, 4, 30, 60, 180},
      {"G6", 6, 30, 4, 30, 60, 180},
  };

  io::Table table({"Label", "Resolution(km)", "Layers", "Dyn", "Trac", "Phy",
                   "Rad", "Cells", "Edges", "Vertices"});
  for (const Row& r : rows) {
    const auto counts = grid::countsForLevel(r.level);
    char res[40];
    std::snprintf(res, sizeof res, "%.3g~%.3g", grid::minSpacingKm(r.level),
                  grid::maxSpacingKm(r.level));
    table.addRow({r.label, res, std::to_string(r.layers), std::to_string(r.dyn),
                  std::to_string(r.trac), std::to_string(r.phy),
                  std::to_string(r.rad), human(counts.cells), human(counts.edges),
                  human(counts.vertices)});
  }
  table.print();

  std::printf(
      "\nPaper's Table 2 reference counts: G12 167M/503M/336M, G6 41.0K/123K/81.9K.\n"
      "Verification against MATERIALIZED meshes (exact counts):\n\n");
  io::Table verify({"Level", "Built cells", "Formula", "Built edges", "Formula",
                    "Built vertices", "Formula", "Match"});
  for (int level : {3, 4, 5, 6}) {
    const grid::HexMesh mesh = grid::buildHexMesh(level);
    const auto counts = grid::countsForLevel(level);
    const bool ok = mesh.ncells == counts.cells && mesh.nedges == counts.edges &&
                    mesh.nvertices == counts.vertices;
    verify.addRow({"G" + std::to_string(level), std::to_string(mesh.ncells),
                   std::to_string(counts.cells), std::to_string(mesh.nedges),
                   std::to_string(counts.edges), std::to_string(mesh.nvertices),
                   std::to_string(counts.vertices), ok ? "yes" : "NO"});
  }
  verify.print();
  return 0;
}
