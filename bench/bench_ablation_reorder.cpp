// Ablation: the BFS index reordering of paper section 3.1.3 ("optimize the
// index sequence using the breadth-first-search method to enhance the cache
// hit rate"). Measured two ways: host wall time of the production dycore
// kernels, and LDCache hit ratio / cycles on the SW26010P simulator.
#include <cstdio>

#include "grist/common/timer.hpp"
#include "grist/dycore/kernels.hpp"
#include "grist/grid/reorder.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/io/table.hpp"
#include "grist/parallel/field.hpp"
#include "grist/swgomp/sim_kernels.hpp"

using namespace grist;

namespace {

double hostKernelSeconds(const grid::HexMesh& mesh, int nlev, int reps) {
  const parallel::Field delp(mesh.ncells, nlev, 500.0);
  const parallel::Field u(mesh.nedges, nlev, 10.0);
  parallel::Field flux(mesh.nedges, nlev, 0.0);
  parallel::Field div(mesh.ncells, nlev, 0.0);
  Timer timer;
  for (int r = 0; r < reps; ++r) {
    dycore::kernels::primalNormalFluxEdge<double>(mesh, mesh.nedges, nlev,
                                                  delp.data(), u.data(), flux.data());
    dycore::kernels::divAtCell<double>(mesh, mesh.ncells, nlev, flux.data(),
                                       div.data());
  }
  return timer.elapsed() / reps;
}

} // namespace

int main() {
  std::printf(
      "== Ablation: BFS index reordering (paper section 3.1.3) ==\n\n"
      "Raw bisection numbering scatters neighbor indices across the array;\n"
      "BFS renumbering makes them adjacent.\n\n");

  const int nlev = 30;
  const grid::HexMesh raw = grid::buildHexMesh(6);
  const grid::HexMesh bfs = grid::applyPermutation(raw, grid::bfsPermutation(raw));

  io::Table spread({"Numbering", "Normalized neighbor-id spread"});
  spread.addRow({"raw bisection", io::Table::num(grid::indexSpread(raw), 4)});
  spread.addRow({"BFS reordered", io::Table::num(grid::indexSpread(bfs), 4)});
  spread.print();

  std::printf("\n-- host: flux + divergence kernels, G6 x %d levels --\n\n", nlev);
  const double t_raw = hostKernelSeconds(raw, nlev, 5);
  const double t_bfs = hostKernelSeconds(bfs, nlev, 5);
  io::Table host({"Numbering", "Wall per sweep (ms)", "Speedup"});
  host.addRow({"raw bisection", io::Table::num(t_raw * 1e3, 2), "1.00x"});
  host.addRow({"BFS reordered", io::Table::num(t_bfs * 1e3, 2),
               io::Table::num(t_raw / t_bfs, 2) + "x"});
  host.print();

  std::printf("\n-- simulator: div_at_cell on one CG (G4 slice, LDCache stats) --\n\n");
  const grid::HexMesh raw4 = grid::buildHexMesh(4);
  const grid::HexMesh bfs4 = grid::applyPermutation(raw4, grid::bfsPermutation(raw4));
  io::Table sim({"Numbering", "Region cycles", "LDCache hit ratio"});
  for (const auto& [name, mesh] : {std::pair<const char*, const grid::HexMesh*>{
                                       "raw bisection", &raw4},
                                   {"BFS reordered", &bfs4}}) {
    const grid::TrskWeights trsk = grid::buildTrskWeights(*mesh);
    sunway::CoreGroup cg;
    swgomp::SimConfig cfg;
    cfg.nlev = nlev;
    cfg.policy = swgomp::AllocPolicy::kDistributed;
    const double cycles = swgomp::runSimKernel(swgomp::SimKernel::kDivAtCell, *mesh,
                                               trsk, cfg, cg);
    sim.addRow({name, io::Table::num(cycles, 0),
                io::Table::num(cg.cpe(0).cache().hitRatio(), 4)});
  }
  sim.print();
  return 0;
}
