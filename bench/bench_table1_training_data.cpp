// Table 1 reproduction: the four training periods with their ENSO/MJO
// characteristics, the synthetic forcing each maps to, and the 7:1
// train/test split -- plus a live run of the training-data pipeline
// (synthesize -> conventional physics -> harvest Q1/Q2 + radiation samples).
#include <cstdio>

#include "grist/io/table.hpp"
#include "grist/ml/traindata.hpp"

int main() {
  using namespace grist;
  std::printf("== Table 1: selected time periods and climate characteristics ==\n\n");

  io::Table table({"Time period", "Oceanic Nino Index", "RMM MJO index",
                   "SST base (K)", "MJO moisture amp"});
  const auto scenarios = ml::table1Scenarios();
  for (const auto& sc : scenarios) {
    char oni[48], mjo[32];
    std::snprintf(oni, sizeof oni, "%.1f (%s)", sc.oni, sc.enso_phase.c_str());
    std::snprintf(mjo, sizeof mjo, "%.2f to %.2f", sc.mjo_lo, sc.mjo_hi);
    table.addRow({sc.period, oni, mjo, io::Table::num(sc.sst_base, 1),
                  io::Table::num(sc.mjo_moisture, 3)});
  }
  table.print();

  std::printf(
      "\n-- pipeline run: 20 days x 24 hourly samples per period (Table 1's\n"
      "   '80 days, 20 per season') --\n\n");
  const int nlev = 30;
  std::vector<ml::ColumnSample> all;
  std::vector<ml::RadSample> rads;
  for (const auto& sc : scenarios) {
    for (int sample = 0; sample < 20 * 24; ++sample) {
      ml::Scenario hourly = sc;
      hourly.seed = sc.seed * 1000 + sample;
      physics::PhysicsInput in = ml::synthesizeColumns(hourly, 1, nlev);
      physics::ConventionalSuite suite(in.ncolumns, nlev);
      std::vector<ml::ColumnSample> cols;
      ml::harvestSamples(in, suite, 600.0, cols, rads);
      all.push_back(std::move(cols.front()));
    }
  }
  const std::size_t total = all.size();
  // Day-blocked split (3 of 24 hourly steps per day to test).
  std::vector<ml::ColumnSample> train, test;
  ml::splitTrainTest(all, 19980120, train, test);

  io::Table split({"Samples", "Train", "Test", "Train:Test"});
  split.addRow({std::to_string(total), std::to_string(train.size()),
                std::to_string(test.size()),
                io::Table::num(static_cast<double>(train.size()) /
                                   static_cast<double>(test.size()),
                               2)});
  split.print();
  std::printf("\nPaper: training/testing ratio 7:1 (3 random steps per day to test).\n");
  return 0;
}
