// Host-side microbenchmarks (google-benchmark) of the production dycore
// kernels in both precisions. These are NOT a paper figure; they document
// this build's raw kernel throughput, and back the note in section 4.6 that
// mixed precision alone buys little on a conventional cache-rich CPU (the
// big wins in Fig. 9 come from the CPE memory system, reproduced in
// bench_fig9_kernels).
//
// The BM_Unfused*/BM_Fused* pairs measure the fused single-sweep tendency
// pipeline against the multi-sweep kernel sequence it replaced; the
// BM_Simd*/BM_Fused* pairs measure the explicitly vectorized SimdBackend
// tier (best the CPU supports) against the auto-vectorized Host
// instantiation on identical inputs. Record both to BENCH_host_kernels.json
// with the --benchmark_format=json invocation documented in README.md.
//
// Every benchmark makes one untimed warm-up call before the timing loop so
// the first measured iteration sees warm thread-local Workspace arenas and
// faulted-in aligned field pages, not first-touch costs.
#include <benchmark/benchmark.h>

#include <random>
#include <vector>

#include "grist/backend/quant.hpp"
#include "grist/backend/simd.hpp"
#include "grist/common/math.hpp"
#include "grist/dycore/kernels.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/ml/matrix.hpp"
#include "grist/ml/quant.hpp"
#include "grist/ml/ml_suite.hpp"
#include "grist/ml/traindata.hpp"
#include "grist/parallel/field.hpp"

namespace {

using namespace grist;

struct Fixture {
  grid::HexMesh mesh = grid::buildHexMesh(5);
  grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  int nlev = 30;
  parallel::Field delp{mesh.ncells, nlev, 500.0};
  parallel::Field theta{mesh.ncells, nlev, 300.0};
  parallel::Field phi{mesh.ncells, nlev + 1, 0.0};
  parallel::Field u{mesh.nedges, nlev, 10.0};
  parallel::Field flux{mesh.nedges, nlev, 0.0};
  parallel::Field out_cell{mesh.ncells, nlev, 0.0};
  parallel::Field out_edge{mesh.nedges, nlev, 0.0};
  parallel::Field vor{mesh.nvertices, nlev, 0.0};
  parallel::Field qv{mesh.nvertices, nlev, 1.0e-8};
  // Extra streams for the fused-vs-unfused tendency pipeline.
  parallel::Field uflux{mesh.nedges, nlev, 0.0};
  parallel::Field div_flux{mesh.ncells, nlev, 0.0};
  parallel::Field div_u{mesh.ncells, nlev, 0.0};
  parallel::Field ke{mesh.ncells, nlev, 0.0};
  parallel::Field alpha{mesh.ncells, nlev, 0.0};
  parallel::Field p{mesh.ncells, nlev, 0.0};
  parallel::Field exner{mesh.ncells, nlev, 0.0};
  parallel::Field pi_mid{mesh.ncells, nlev, 0.0};
  parallel::Field vvor{mesh.nvertices, nlev, 0.0};
  parallel::Field vqv{mesh.nvertices, nlev, 0.0};
  parallel::Field delp_tend{mesh.ncells, nlev, 0.0};
  parallel::Field thetam_tend{mesh.ncells, nlev, 0.0};
  parallel::Field scalar_del2{mesh.ncells, nlev, 0.0};
  parallel::Field u_tend{mesh.nedges, nlev, 0.0};
  parallel::Field w{mesh.ncells, nlev + 1, 0.01};
  double nu_theta = 0.005 / 300.0;
  double nu_div = 0.02 / 300.0;
  double nu_vor = 0.005 / 300.0;

  Fixture() {
    // Hydrostatic-ish phi so compute_rrr's pow() sees sane ratios; gentle
    // per-entity variation so upwind branches and limiters see both signs.
    for (Index c = 0; c < mesh.ncells; ++c) {
      for (int k = 0; k < nlev; ++k) {
        delp(c, k) = 500.0 + 20.0 * std::sin(0.37 * c + 0.9 * k);
        theta(c, k) = 300.0 + 10.0 * std::cos(0.11 * c - 0.5 * k);
      }
      for (int k = nlev; k >= 0; --k) phi(c, k) = (nlev - k) * 2000.0;
    }
    for (Index e = 0; e < mesh.nedges; ++e) {
      for (int k = 0; k < nlev; ++k) u(e, k) = 12.0 * std::sin(0.23 * e + 0.4 * k) - 3.0;
    }
    dycore::kernels::computeRrr<double>(mesh.ncells, nlev, 225.0, delp.data(),
                                        theta.data(), phi.data(), alpha.data(),
                                        p.data(), exner.data(), pi_mid.data());
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

template <typename NS>
void BM_PrimalNormalFlux(benchmark::State& state) {
  Fixture& f = fixture();
  dycore::kernels::primalNormalFluxEdge<NS>(f.mesh, f.mesh.nedges, f.nlev,
                                            f.delp.data(), f.u.data(),
                                            f.flux.data());
  for (auto _ : state) {
    dycore::kernels::primalNormalFluxEdge<NS>(f.mesh, f.mesh.nedges, f.nlev,
                                              f.delp.data(), f.u.data(),
                                              f.flux.data());
    benchmark::DoNotOptimize(f.flux.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

template <typename NS>
void BM_DivAtCell(benchmark::State& state) {
  Fixture& f = fixture();
  dycore::kernels::divAtCell<NS>(f.mesh, f.mesh.ncells, f.nlev, f.flux.data(),
                                 f.out_cell.data());
  for (auto _ : state) {
    dycore::kernels::divAtCell<NS>(f.mesh, f.mesh.ncells, f.nlev, f.flux.data(),
                                   f.out_cell.data());
    benchmark::DoNotOptimize(f.out_cell.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

template <typename NS>
void BM_ComputeRrr(benchmark::State& state) {
  Fixture& f = fixture();
  parallel::Field alpha(f.mesh.ncells, f.nlev), p(f.mesh.ncells, f.nlev),
      exner(f.mesh.ncells, f.nlev), pi(f.mesh.ncells, f.nlev);
  dycore::kernels::computeRrr<NS>(f.mesh.ncells, f.nlev, 225.0, f.delp.data(),
                                  f.theta.data(), f.phi.data(), alpha.data(),
                                  p.data(), exner.data(), pi.data());
  for (auto _ : state) {
    dycore::kernels::computeRrr<NS>(f.mesh.ncells, f.nlev, 225.0, f.delp.data(),
                                    f.theta.data(), f.phi.data(), alpha.data(),
                                    p.data(), exner.data(), pi.data());
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

template <typename NS>
void BM_CoriolisTerm(benchmark::State& state) {
  Fixture& f = fixture();
  f.out_edge.fill(0.0);
  dycore::kernels::calcCoriolisTerm<NS>(f.mesh, f.trsk, f.mesh.nedges, f.nlev,
                                        f.flux.data(), f.qv.data(),
                                        f.out_edge.data());
  for (auto _ : state) {
    f.out_edge.fill(0.0);
    dycore::kernels::calcCoriolisTerm<NS>(f.mesh, f.trsk, f.mesh.nedges, f.nlev,
                                          f.flux.data(), f.qv.data(),
                                          f.out_edge.data());
    benchmark::DoNotOptimize(f.out_edge.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

// ---------------------------------------------------------------------------
// Fused-vs-unfused pairs. Each BM_Unfused* reproduces the pre-fusion kernel
// sequence (including its zero-fill and read-modify-write passes over the
// tendency arrays); the BM_Fused* partner runs the single-sweep replacement
// on identical inputs. The *TendencyPipeline pair is the acceptance number:
// the full horizontal tendency step, everything downstream of computeRrr.
// ---------------------------------------------------------------------------

template <typename NS>
void unfusedEdgeFluxes(Fixture& f) {
  dycore::kernels::primalNormalFluxEdge<NS>(f.mesh, f.mesh.nedges, f.nlev,
                                            f.delp.data(), f.u.data(),
                                            f.flux.data());
  // Pre-fusion dycore filled uflux with its own edge loop (always double).
  double* uflux = f.uflux.data();
  const double* u = f.u.data();
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < f.mesh.nedges; ++e) {
    const double le = f.mesh.edge_le[e];
    for (int k = 0; k < f.nlev; ++k) uflux[e * f.nlev + k] = le * u[e * f.nlev + k];
  }
}

template <typename NS>
void unfusedCellDiagnostics(Fixture& f) {
  dycore::kernels::divAtCell<NS>(f.mesh, f.mesh.ncells, f.nlev, f.flux.data(),
                                 f.div_flux.data());
  dycore::kernels::divAtCell<NS>(f.mesh, f.mesh.ncells, f.nlev, f.uflux.data(),
                                 f.div_u.data());
  dycore::kernels::kineticEnergy<NS>(f.mesh, f.mesh.ncells, f.nlev, f.u.data(),
                                     f.ke.data());
}

template <typename NS>
void unfusedScalarTendencies(Fixture& f) {
  const std::size_t cn = static_cast<std::size_t>(f.mesh.ncells) * f.nlev;
  double* dt = f.delp_tend.data();
  const double* div = f.div_flux.data();
  for (std::size_t i = 0; i < cn; ++i) dt[i] = -div[i];
  f.scalar_del2.fill(0.0);
  dycore::kernels::scalarFluxTendency<NS>(f.mesh, f.mesh.ncells, f.nlev,
                                          f.flux.data(), f.theta.data(),
                                          f.thetam_tend.data());
  dycore::kernels::del2Scalar<NS>(f.mesh, f.mesh.ncells, f.nlev, f.theta.data(),
                                  f.nu_theta, f.scalar_del2.data());
  double* tt = f.thetam_tend.data();
  const double* dp = f.delp.data();
  const double* s2 = f.scalar_del2.data();
  for (std::size_t i = 0; i < cn; ++i) tt[i] += dp[i] * s2[i];
}

template <typename NS>
void unfusedMomentumTendency(Fixture& f) {
  f.u_tend.fill(0.0);
  dycore::kernels::tendGradKeAtEdge<NS>(f.mesh, f.mesh.nedges, f.nlev,
                                        f.ke.data(), f.u_tend.data());
  dycore::kernels::calcCoriolisTerm<NS>(f.mesh, f.trsk, f.mesh.nedges, f.nlev,
                                        f.flux.data(), f.vqv.data(),
                                        f.u_tend.data());
  dycore::kernels::calcPressureGradient(f.mesh, f.mesh.nedges, f.nlev,
                                        f.phi.data(), f.alpha.data(), f.p.data(),
                                        f.pi_mid.data(), f.u_tend.data());
  dycore::kernels::del2Momentum<NS>(f.mesh, f.mesh.nedges, f.nlev,
                                    f.div_u.data(), f.vor.data(), f.nu_div,
                                    f.nu_vor, f.u_tend.data());
}

template <typename NS>
void BM_UnfusedEdgeFluxes(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  for (auto _ : state) {
    unfusedEdgeFluxes<NS>(f);
    benchmark::DoNotOptimize(f.uflux.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

template <typename NS>
void BM_FusedEdgeFluxes(benchmark::State& state) {
  Fixture& f = fixture();
  dycore::kernels::fusedEdgeFluxes<NS>(f.mesh, f.mesh.nedges, f.nlev,
                                       f.delp.data(), f.u.data(),
                                       f.flux.data(), f.uflux.data());
  for (auto _ : state) {
    dycore::kernels::fusedEdgeFluxes<NS>(f.mesh, f.mesh.nedges, f.nlev,
                                         f.delp.data(), f.u.data(),
                                         f.flux.data(), f.uflux.data());
    benchmark::DoNotOptimize(f.uflux.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

template <typename NS>
void BM_UnfusedCellDiagnostics(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  unfusedCellDiagnostics<NS>(f);
  for (auto _ : state) {
    unfusedCellDiagnostics<NS>(f);
    benchmark::DoNotOptimize(f.ke.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

template <typename NS>
void BM_FusedCellDiagnostics(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  dycore::kernels::fusedCellDiagnostics<NS>(f.mesh, f.mesh.ncells, f.nlev,
                                            f.flux.data(), f.uflux.data(),
                                            f.u.data(), f.div_flux.data(),
                                            f.div_u.data(), f.ke.data());
  for (auto _ : state) {
    dycore::kernels::fusedCellDiagnostics<NS>(f.mesh, f.mesh.ncells, f.nlev,
                                              f.flux.data(), f.uflux.data(),
                                              f.u.data(), f.div_flux.data(),
                                              f.div_u.data(), f.ke.data());
    benchmark::DoNotOptimize(f.ke.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

template <typename NS>
void BM_UnfusedMomentumTendency(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  unfusedCellDiagnostics<NS>(f);
  dycore::kernels::fusedVertexDiagnostics<NS>(f.mesh, f.mesh.nvertices, f.nlev,
                                              f.u.data(), f.delp.data(),
                                              constants::kOmega, f.vvor.data(),
                                              f.vqv.data());
  unfusedMomentumTendency<NS>(f);
  for (auto _ : state) {
    unfusedMomentumTendency<NS>(f);
    benchmark::DoNotOptimize(f.u_tend.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

template <typename NS>
void BM_FusedMomentumTendency(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  unfusedCellDiagnostics<NS>(f);
  dycore::kernels::fusedVertexDiagnostics<NS>(f.mesh, f.mesh.nvertices, f.nlev,
                                              f.u.data(), f.delp.data(),
                                              constants::kOmega, f.vvor.data(),
                                              f.vqv.data());
  dycore::kernels::fusedMomentumTendency<NS>(
      f.mesh, f.trsk, f.mesh.nedges, f.nlev, f.ke.data(), f.vqv.data(),
      f.flux.data(), f.phi.data(), f.alpha.data(), f.p.data(), f.div_u.data(),
      f.vvor.data(), f.nu_div, f.nu_vor, f.u_tend.data());
  for (auto _ : state) {
    dycore::kernels::fusedMomentumTendency<NS>(
        f.mesh, f.trsk, f.mesh.nedges, f.nlev, f.ke.data(), f.vqv.data(),
        f.flux.data(), f.phi.data(), f.alpha.data(), f.p.data(),
        f.div_u.data(), f.vvor.data(), f.nu_div, f.nu_vor, f.u_tend.data());
    benchmark::DoNotOptimize(f.u_tend.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

// Host baselines for the two fused sweeps that previously only appeared
// inside the pipeline benchmark; the BM_Simd* partners below need
// standalone numbers for every registry sweep.
template <typename NS>
void BM_FusedVertexDiagnostics(benchmark::State& state) {
  Fixture& f = fixture();
  dycore::kernels::fusedVertexDiagnostics<NS>(f.mesh, f.mesh.nvertices, f.nlev,
                                              f.u.data(), f.delp.data(),
                                              constants::kOmega, f.vvor.data(),
                                              f.vqv.data());
  for (auto _ : state) {
    dycore::kernels::fusedVertexDiagnostics<NS>(
        f.mesh, f.mesh.nvertices, f.nlev, f.u.data(), f.delp.data(),
        constants::kOmega, f.vvor.data(), f.vqv.data());
    benchmark::DoNotOptimize(f.vqv.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nvertices * f.nlev);
}

template <typename NS>
void BM_FusedScalarTendencies(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  unfusedCellDiagnostics<NS>(f);
  dycore::kernels::fusedScalarTendencies<NS>(
      f.mesh, f.mesh.ncells, f.nlev, f.flux.data(), f.theta.data(),
      f.delp.data(), f.div_flux.data(), f.nu_theta, f.delp_tend.data(),
      f.thetam_tend.data());
  for (auto _ : state) {
    dycore::kernels::fusedScalarTendencies<NS>(
        f.mesh, f.mesh.ncells, f.nlev, f.flux.data(), f.theta.data(),
        f.delp.data(), f.div_flux.data(), f.nu_theta, f.delp_tend.data(),
        f.thetam_tend.data());
    benchmark::DoNotOptimize(f.thetam_tend.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

// ---------------------------------------------------------------------------
// SimdBackend pairs: each BM_Simd* runs the best-available dispatch tier's
// table entry on the same Fixture data as its BM_Fused* partner (which pins
// the HostBackend instantiation). Bitwise-identical output, so the pair
// isolates the cost of explicit vectorization alone. The acceptance gate is
// the BM_Simd*/BM_Fused* geomean across the fused sweeps.
// ---------------------------------------------------------------------------

template <typename NS>
void BM_SimdEdgeFluxes(benchmark::State& state) {
  Fixture& f = fixture();
  const backend::simd::KernelTable& tb = backend::simd::table();
  constexpr int si = backend::simd::kNsIndex<NS>;
  state.SetLabel(backend::simd::tierName(tb.tier));
  tb.fused_edge_fluxes[si](f.mesh, f.mesh.nedges, f.nlev, f.delp.data(),
                           f.u.data(), f.flux.data(), f.uflux.data());
  for (auto _ : state) {
    tb.fused_edge_fluxes[si](f.mesh, f.mesh.nedges, f.nlev, f.delp.data(),
                             f.u.data(), f.flux.data(), f.uflux.data());
    benchmark::DoNotOptimize(f.uflux.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

template <typename NS>
void BM_SimdCellDiagnostics(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  const backend::simd::KernelTable& tb = backend::simd::table();
  constexpr int si = backend::simd::kNsIndex<NS>;
  state.SetLabel(backend::simd::tierName(tb.tier));
  tb.fused_cell_diagnostics[si](f.mesh, f.mesh.ncells, f.nlev, f.flux.data(),
                                f.uflux.data(), f.u.data(), f.div_flux.data(),
                                f.div_u.data(), f.ke.data());
  for (auto _ : state) {
    tb.fused_cell_diagnostics[si](f.mesh, f.mesh.ncells, f.nlev, f.flux.data(),
                                  f.uflux.data(), f.u.data(),
                                  f.div_flux.data(), f.div_u.data(),
                                  f.ke.data());
    benchmark::DoNotOptimize(f.ke.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

template <typename NS>
void BM_SimdVertexDiagnostics(benchmark::State& state) {
  Fixture& f = fixture();
  const backend::simd::KernelTable& tb = backend::simd::table();
  constexpr int si = backend::simd::kNsIndex<NS>;
  state.SetLabel(backend::simd::tierName(tb.tier));
  tb.fused_vertex_diagnostics[si](f.mesh, f.mesh.nvertices, f.nlev, f.u.data(),
                                  f.delp.data(), constants::kOmega,
                                  f.vvor.data(), f.vqv.data());
  for (auto _ : state) {
    tb.fused_vertex_diagnostics[si](f.mesh, f.mesh.nvertices, f.nlev,
                                    f.u.data(), f.delp.data(),
                                    constants::kOmega, f.vvor.data(),
                                    f.vqv.data());
    benchmark::DoNotOptimize(f.vqv.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nvertices * f.nlev);
}

template <typename NS>
void BM_SimdScalarTendencies(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  unfusedCellDiagnostics<NS>(f);
  const backend::simd::KernelTable& tb = backend::simd::table();
  constexpr int si = backend::simd::kNsIndex<NS>;
  state.SetLabel(backend::simd::tierName(tb.tier));
  tb.fused_scalar_tendencies[si](f.mesh, f.mesh.ncells, f.nlev, f.flux.data(),
                                 f.theta.data(), f.delp.data(),
                                 f.div_flux.data(), f.nu_theta,
                                 f.delp_tend.data(), f.thetam_tend.data());
  for (auto _ : state) {
    tb.fused_scalar_tendencies[si](f.mesh, f.mesh.ncells, f.nlev,
                                   f.flux.data(), f.theta.data(),
                                   f.delp.data(), f.div_flux.data(),
                                   f.nu_theta, f.delp_tend.data(),
                                   f.thetam_tend.data());
    benchmark::DoNotOptimize(f.thetam_tend.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

template <typename NS>
void BM_SimdMomentumTendency(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  unfusedCellDiagnostics<NS>(f);
  dycore::kernels::fusedVertexDiagnostics<NS>(f.mesh, f.mesh.nvertices, f.nlev,
                                              f.u.data(), f.delp.data(),
                                              constants::kOmega, f.vvor.data(),
                                              f.vqv.data());
  const backend::simd::KernelTable& tb = backend::simd::table();
  constexpr int si = backend::simd::kNsIndex<NS>;
  state.SetLabel(backend::simd::tierName(tb.tier));
  tb.fused_momentum_tendency[si](
      f.mesh, f.trsk, f.mesh.nedges, f.nlev, f.ke.data(), f.vqv.data(),
      f.flux.data(), f.phi.data(), f.alpha.data(), f.p.data(), f.div_u.data(),
      f.vvor.data(), f.nu_div, f.nu_vor, f.u_tend.data());
  for (auto _ : state) {
    tb.fused_momentum_tendency[si](
        f.mesh, f.trsk, f.mesh.nedges, f.nlev, f.ke.data(), f.vqv.data(),
        f.flux.data(), f.phi.data(), f.alpha.data(), f.p.data(),
        f.div_u.data(), f.vvor.data(), f.nu_div, f.nu_vor, f.u_tend.data());
    benchmark::DoNotOptimize(f.u_tend.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

// The SIMD acceptance pipeline: the same five fused sweeps as
// BM_FusedTendencyPipeline, all through the dispatch table.
template <typename NS>
void BM_SimdTendencyPipeline(benchmark::State& state) {
  Fixture& f = fixture();
  const backend::simd::KernelTable& tb = backend::simd::table();
  constexpr int si = backend::simd::kNsIndex<NS>;
  state.SetLabel(backend::simd::tierName(tb.tier));
  auto run = [&f, &tb] {
    tb.fused_edge_fluxes[si](f.mesh, f.mesh.nedges, f.nlev, f.delp.data(),
                             f.u.data(), f.flux.data(), f.uflux.data());
    tb.fused_cell_diagnostics[si](f.mesh, f.mesh.ncells, f.nlev, f.flux.data(),
                                  f.uflux.data(), f.u.data(),
                                  f.div_flux.data(), f.div_u.data(),
                                  f.ke.data());
    tb.fused_vertex_diagnostics[si](f.mesh, f.mesh.nvertices, f.nlev,
                                    f.u.data(), f.delp.data(),
                                    constants::kOmega, f.vvor.data(),
                                    f.vqv.data());
    tb.fused_scalar_tendencies[si](f.mesh, f.mesh.ncells, f.nlev,
                                   f.flux.data(), f.theta.data(),
                                   f.delp.data(), f.div_flux.data(),
                                   f.nu_theta, f.delp_tend.data(),
                                   f.thetam_tend.data());
    tb.fused_momentum_tendency[si](
        f.mesh, f.trsk, f.mesh.nedges, f.nlev, f.ke.data(), f.vqv.data(),
        f.flux.data(), f.phi.data(), f.alpha.data(), f.p.data(),
        f.div_u.data(), f.vvor.data(), f.nu_div, f.nu_vor, f.u_tend.data());
  };
  run();
  for (auto _ : state) {
    run();
    benchmark::DoNotOptimize(f.u_tend.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

// ---------------------------------------------------------------------------
// Backend-refactor reference pairs. legacyFused* are frozen copies of the
// pre-refactor raw-pointer fused kernels; the BM_Fused* partners above now
// route through the HostBackend instantiation of the shared backend bodies.
// The pairs must stay within measurement noise of each other (the Host
// views/context must compile away entirely) and, being bit-exact, validate
// the refactor on the same inputs.
// ---------------------------------------------------------------------------

template <typename NS>
void legacyFusedEdgeFluxes(const Fixture& f, const double* delp,
                           const double* u, double* flux, double* uflux) {
  const grid::HexMesh& m = f.mesh;
  const int nlev = f.nlev;
#pragma omp parallel for schedule(static)
  for (Index e = 0; e < m.nedges; ++e) {
    const Index c1 = m.edge_cell[e][0];
    const Index c2 = m.edge_cell[e][1];
    const double le_d = m.edge_le[e];
    const NS le = static_cast<NS>(le_d);
    for (int k = 0; k < nlev; ++k) {
      const NS h1 = static_cast<NS>(delp[c1 * nlev + k]);
      const NS h2 = static_cast<NS>(delp[c2 * nlev + k]);
      const NS ue = static_cast<NS>(u[e * nlev + k]);
      const NS centered = NS(0.5) * (h1 + h2);
      const NS upwind = ue >= NS(0) ? h1 : h2;
      const NS r = upwind / centered;
      const NS blend = NS(1) / (NS(1) + r * r);
      const NS he = centered + blend * (upwind - centered) * NS(0.5);
      flux[e * nlev + k] = static_cast<double>(le * ue * he);
      uflux[e * nlev + k] = le_d * u[e * nlev + k];
    }
  }
}

template <typename NS>
void legacyFusedCellDiagnostics(const Fixture& f, const double* flux,
                                const double* uflux, const double* u,
                                double* div_flux, double* div_u, double* ke) {
  const grid::HexMesh& m = f.mesh;
  const int nlev = f.nlev;
#pragma omp parallel for schedule(static)
  for (Index c = 0; c < m.ncells; ++c) {
    const NS inv_area = static_cast<NS>(1.0 / m.cell_area[c]);
    double* df = div_flux + static_cast<std::size_t>(c) * nlev;
    double* du = div_u + static_cast<std::size_t>(c) * nlev;
    double* kc = ke + static_cast<std::size_t>(c) * nlev;
    for (int k = 0; k < nlev; ++k) {
      df[k] = 0.0;
      du[k] = 0.0;
      kc[k] = 0.0;
    }
    for (Index j = m.cell_offset[c]; j < m.cell_offset[c + 1]; ++j) {
      const Index e = m.cell_edges[j];
      const NS sign = static_cast<NS>(m.cell_edge_sign[j]);
      const NS weight =
          static_cast<NS>(0.25 * m.edge_le[e] * m.edge_de[e]) * inv_area;
      for (int k = 0; k < nlev; ++k) {
        df[k] += static_cast<double>(
            sign * static_cast<NS>(flux[e * nlev + k]) * inv_area);
        du[k] += static_cast<double>(
            sign * static_cast<NS>(uflux[e * nlev + k]) * inv_area);
        const NS ue = static_cast<NS>(u[e * nlev + k]);
        kc[k] += static_cast<double>(weight * ue * ue);
      }
    }
  }
}

template <typename NS>
void legacyFusedMomentumTendency(const Fixture& f, const double* ke,
                                 const double* qv, const double* flux,
                                 const double* phi, const double* alpha,
                                 const double* p, const double* div_u,
                                 const double* vor, double* tend_u) {
  const grid::HexMesh& m = f.mesh;
  const grid::TrskWeights& trsk = f.trsk;
  const int nlev = f.nlev;
  const double nu_div = f.nu_div;
  const double nu_vor = f.nu_vor;
#pragma omp parallel
  {
    common::Workspace& ws = common::Workspace::threadLocal();
    ws.reserve(2 * common::Workspace::bytesFor<NS>(nlev));
#pragma omp for schedule(static)
    for (Index e = 0; e < m.nedges; ++e) {
      const common::Workspace::Frame frame(ws);
      NS* qe_row = ws.get<NS>(nlev);
      NS* acc_row = ws.get<NS>(nlev);
      const Index c1 = m.edge_cell[e][0];
      const Index c2 = m.edge_cell[e][1];
      const Index v1 = m.edge_vertex[e][0];
      const Index v2 = m.edge_vertex[e][1];
      const NS inv_de = static_cast<NS>(1.0 / m.edge_de[e]);
      const NS inv_le = static_cast<NS>(1.0 / m.edge_le[e]);
      const NS scale = static_cast<NS>(m.edge_de[e] * m.edge_de[e]);
      const double inv_de_d = 1.0 / m.edge_de[e];
      for (int k = 0; k < nlev; ++k) {
        qe_row[k] = NS(0.5) * (static_cast<NS>(qv[v1 * nlev + k]) +
                               static_cast<NS>(qv[v2 * nlev + k]));
        acc_row[k] = NS(0);
      }
      for (Index j = trsk.offset[e]; j < trsk.offset[e + 1]; ++j) {
        const Index ep = trsk.edge[j];
        const NS wj = static_cast<NS>(trsk.weight[j]);
        const NS inv_lep = static_cast<NS>(1.0 / m.edge_le[ep]);
        const double* qv1 = qv + m.edge_vertex[ep][0] * nlev;
        const double* qv2 = qv + m.edge_vertex[ep][1] * nlev;
        const double* fl = flux + ep * nlev;
        for (int k = 0; k < nlev; ++k) {
          const NS qep =
              NS(0.5) * (static_cast<NS>(qv1[k]) + static_cast<NS>(qv2[k]));
          acc_row[k] += wj * static_cast<NS>(fl[k]) * inv_lep * NS(0.5) *
                        (qe_row[k] + qep);
        }
      }
      for (int k = 0; k < nlev; ++k) {
        double t = 0.0;
        t += static_cast<double>(-(static_cast<NS>(ke[c2 * nlev + k]) -
                                   static_cast<NS>(ke[c1 * nlev + k])) *
                                 inv_de);
        t += static_cast<double>(acc_row[k]);
        const double phm1 =
            0.5 * (phi[c1 * (nlev + 1) + k] + phi[c1 * (nlev + 1) + k + 1]);
        const double phm2 =
            0.5 * (phi[c2 * (nlev + 1) + k] + phi[c2 * (nlev + 1) + k + 1]);
        const double alpha_e =
            0.5 * (alpha[c1 * nlev + k] + alpha[c2 * nlev + k]);
        t -= ((phm2 - phm1) + alpha_e * (p[c2 * nlev + k] - p[c1 * nlev + k])) *
             inv_de_d;
        const NS grad_div = (static_cast<NS>(div_u[c2 * nlev + k]) -
                             static_cast<NS>(div_u[c1 * nlev + k])) *
                            inv_de;
        const NS curl_vor = (static_cast<NS>(vor[v2 * nlev + k]) -
                             static_cast<NS>(vor[v1 * nlev + k])) *
                            inv_le;
        t += static_cast<double>(scale * (static_cast<NS>(nu_div) * grad_div -
                                          static_cast<NS>(nu_vor) * curl_vor));
        tend_u[e * nlev + k] = t;
      }
    }
  } // omp parallel
}

template <typename NS>
void BM_LegacyFusedEdgeFluxes(benchmark::State& state) {
  Fixture& f = fixture();
  legacyFusedEdgeFluxes<NS>(f, f.delp.data(), f.u.data(), f.flux.data(),
                            f.uflux.data());
  for (auto _ : state) {
    legacyFusedEdgeFluxes<NS>(f, f.delp.data(), f.u.data(), f.flux.data(),
                              f.uflux.data());
    benchmark::DoNotOptimize(f.uflux.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

template <typename NS>
void BM_LegacyFusedCellDiagnostics(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  legacyFusedCellDiagnostics<NS>(f, f.flux.data(), f.uflux.data(), f.u.data(),
                                 f.div_flux.data(), f.div_u.data(),
                                 f.ke.data());
  for (auto _ : state) {
    legacyFusedCellDiagnostics<NS>(f, f.flux.data(), f.uflux.data(), f.u.data(),
                                   f.div_flux.data(), f.div_u.data(),
                                   f.ke.data());
    benchmark::DoNotOptimize(f.ke.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

template <typename NS>
void BM_LegacyFusedMomentumTendency(benchmark::State& state) {
  Fixture& f = fixture();
  unfusedEdgeFluxes<NS>(f);
  unfusedCellDiagnostics<NS>(f);
  dycore::kernels::fusedVertexDiagnostics<NS>(f.mesh, f.mesh.nvertices, f.nlev,
                                              f.u.data(), f.delp.data(),
                                              constants::kOmega, f.vvor.data(),
                                              f.vqv.data());
  legacyFusedMomentumTendency<NS>(f, f.ke.data(), f.vqv.data(), f.flux.data(),
                                  f.phi.data(), f.alpha.data(), f.p.data(),
                                  f.div_u.data(), f.vvor.data(),
                                  f.u_tend.data());
  for (auto _ : state) {
    legacyFusedMomentumTendency<NS>(f, f.ke.data(), f.vqv.data(), f.flux.data(),
                                    f.phi.data(), f.alpha.data(), f.p.data(),
                                    f.div_u.data(), f.vvor.data(),
                                    f.u_tend.data());
    benchmark::DoNotOptimize(f.u_tend.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

// The acceptance pair: the whole horizontal tendency step (everything
// downstream of computeRrr), old multi-sweep sequence vs fused pipeline.
template <typename NS>
void BM_UnfusedTendencyPipeline(benchmark::State& state) {
  Fixture& f = fixture();
  auto run = [&f] {
    unfusedEdgeFluxes<NS>(f);
    unfusedCellDiagnostics<NS>(f);
    dycore::kernels::vorticityAtVertex<NS>(f.mesh, f.mesh.nvertices, f.nlev,
                                           f.u.data(), f.vvor.data());
    dycore::kernels::potentialVorticityAtVertex<NS>(
        f.mesh, f.mesh.nvertices, f.nlev, f.vvor.data(), f.delp.data(),
        constants::kOmega, f.vqv.data());
    unfusedScalarTendencies<NS>(f);
    unfusedMomentumTendency<NS>(f);
  };
  run();
  for (auto _ : state) {
    run();
    benchmark::DoNotOptimize(f.u_tend.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

template <typename NS>
void BM_FusedTendencyPipeline(benchmark::State& state) {
  Fixture& f = fixture();
  auto run = [&f] {
    dycore::kernels::fusedEdgeFluxes<NS>(f.mesh, f.mesh.nedges, f.nlev,
                                         f.delp.data(), f.u.data(),
                                         f.flux.data(), f.uflux.data());
    dycore::kernels::fusedCellDiagnostics<NS>(f.mesh, f.mesh.ncells, f.nlev,
                                              f.flux.data(), f.uflux.data(),
                                              f.u.data(), f.div_flux.data(),
                                              f.div_u.data(), f.ke.data());
    dycore::kernels::fusedVertexDiagnostics<NS>(
        f.mesh, f.mesh.nvertices, f.nlev, f.u.data(), f.delp.data(),
        constants::kOmega, f.vvor.data(), f.vqv.data());
    dycore::kernels::fusedScalarTendencies<NS>(
        f.mesh, f.mesh.ncells, f.nlev, f.flux.data(), f.theta.data(),
        f.delp.data(), f.div_flux.data(), f.nu_theta, f.delp_tend.data(),
        f.thetam_tend.data());
    dycore::kernels::fusedMomentumTendency<NS>(
        f.mesh, f.trsk, f.mesh.nedges, f.nlev, f.ke.data(), f.vqv.data(),
        f.flux.data(), f.phi.data(), f.alpha.data(), f.p.data(),
        f.div_u.data(), f.vvor.data(), f.nu_div, f.nu_vor, f.u_tend.data());
  };
  run();
  for (auto _ : state) {
    run();
    benchmark::DoNotOptimize(f.u_tend.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

// Workspace-backed column solve (hard double): confirms the arena refactor
// did not slow the Thomas sweeps down.
void BM_VertImplicitSolver(benchmark::State& state) {
  Fixture& f = fixture();
  parallel::Field w = f.w;
  parallel::Field phi = f.phi;
  dycore::kernels::vertImplicitSolver(f.mesh.ncells, f.nlev, 300.0, 225.0,
                                      f.delp.data(), f.theta.data(), f.p.data(),
                                      w.data(), phi.data(), 0.0);
  for (auto _ : state) {
    dycore::kernels::vertImplicitSolver(f.mesh.ncells, f.nlev, 300.0, 225.0,
                                        f.delp.data(), f.theta.data(),
                                        f.p.data(), w.data(), phi.data(), 0.0);
    benchmark::DoNotOptimize(w.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

// ---------------------------------------------------------------------------
// Naive-vs-blocked SGEMM pairs and per-column-vs-batched ML-physics
// inference: the acceptance numbers for the packed-GEMM refactor. Shapes:
// square (classic compute-bound), and the MLP/conv shapes the ML suite
// actually issues at the Fig. 8 configuration (nlev=20, channels=24,
// column_block=32 -> n = 640).
// ---------------------------------------------------------------------------

struct GemmOperands {
  int m, n, k;
  std::vector<float> a, b, c;
  GemmOperands(int m_, int n_, int k_) : m(m_), n(n_), k(k_) {
    std::mt19937 rng(12345);
    std::uniform_real_distribution<float> dist(-1.f, 1.f);
    a.resize(static_cast<std::size_t>(m) * k);
    b.resize(static_cast<std::size_t>(k) * n);
    c.resize(static_cast<std::size_t>(m) * n, 0.f);
    for (float& v : a) v = dist(rng);
    for (float& v : b) v = dist(rng);
  }
};

void BM_GemmNaive(benchmark::State& state) {
  GemmOperands op(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)),
                  static_cast<int>(state.range(2)));
  ml::gemmNaive(op.m, op.n, op.k, 1.f, op.a.data(), op.k, false, op.b.data(),
                op.n, false, 0.f, op.c.data(), op.n, {});
  for (auto _ : state) {
    ml::gemmNaive(op.m, op.n, op.k, 1.f, op.a.data(), op.k, false, op.b.data(),
                  op.n, false, 0.f, op.c.data(), op.n, {});
    benchmark::DoNotOptimize(op.c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<std::int64_t>(op.m) *
                          op.n * op.k);
}

void BM_GemmBlocked(benchmark::State& state) {
  GemmOperands op(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)),
                  static_cast<int>(state.range(2)));
  ml::gemmBlocked(op.m, op.n, op.k, 1.f, op.a.data(), op.k, false, op.b.data(),
                  op.n, false, 0.f, op.c.data(), op.n, {});
  for (auto _ : state) {
    ml::gemmBlocked(op.m, op.n, op.k, 1.f, op.a.data(), op.k, false,
                    op.b.data(), op.n, false, 0.f, op.c.data(), op.n, {});
    benchmark::DoNotOptimize(op.c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 * static_cast<std::int64_t>(op.m) *
                          op.n * op.k);
}

// Quantized-weight GEMM with the fused dequant epilogue, against the fp32
// BM_GemmBlocked partner on the same shapes. The label records the kernel
// flavor the dispatch actually ran ("avx512-bf16dp", "avx2-fma", ...).
void benchGemmQuant(benchmark::State& state, ml::Precision prec) {
  GemmOperands op(static_cast<int>(state.range(0)),
                  static_cast<int>(state.range(1)),
                  static_cast<int>(state.range(2)));
  ml::Matrix w(op.m, op.k);
  std::copy(op.a.begin(), op.a.end(), w.a.begin());
  const ml::QuantizedWeights qw = ml::QuantizedWeights::pack(prec, w);
  state.SetLabel(backend::quant::table().name);
  ml::gemmQuant(qw, op.n, op.b.data(), op.n, false, op.c.data(), op.n, {});
  for (auto _ : state) {
    ml::gemmQuant(qw, op.n, op.b.data(), op.n, false, op.c.data(), op.n, {});
    benchmark::DoNotOptimize(op.c.data());
  }
  state.SetItemsProcessed(state.iterations() * 2 *
                          static_cast<std::int64_t>(op.m) * op.n * op.k);
}

void BM_GemmQuantBf16(benchmark::State& state) {
  benchGemmQuant(state, ml::Precision::kBf16);
}
void BM_GemmQuantInt8(benchmark::State& state) {
  benchGemmQuant(state, ml::Precision::kInt8);
}

// End-to-end ML-physics suite throughput at the bench_fig8 configuration;
// the per-column/batched pair differs only in MlSuiteConfig::column_block,
// the precision sweep only in MlSuiteConfig::precision.
void benchMlSuite(benchmark::State& state, int column_block,
                  ml::Precision prec = ml::Precision::kFp32) {
  const int nlev = 20;
  const Index ncol = 256;
  ml::Q1Q2NetConfig qcfg;
  qcfg.nlev = nlev;
  qcfg.channels = 24;
  qcfg.res_units = 2;
  ml::RadMlpConfig rcfg;
  rcfg.nlev = nlev;
  rcfg.hidden = 48;
  ml::MlSuiteConfig cfg;
  cfg.column_block = column_block;
  cfg.precision = prec;
  // Untrained random-weight nets exceed the trained-net 5% envelope on int8
  // (see tests/ml/test_quant.cpp); widen so the gate accepts the bench nets.
  cfg.quant_tolerance = 0.15;
  ml::MlPhysicsSuite suite(ncol, nlev, std::make_shared<ml::Q1Q2Net>(qcfg),
                           std::make_shared<ml::RadMlp>(rcfg), cfg);
  physics::PhysicsInput in =
      ml::synthesizeColumns(ml::table1Scenarios()[0], ncol, nlev);
  physics::PhysicsOutput out(ncol, nlev);
  suite.run(in, 600.0, out);
  for (auto _ : state) {
    suite.run(in, 600.0, out);
    benchmark::DoNotOptimize(out.gsw.data());
  }
  state.SetItemsProcessed(state.iterations() * ncol);
}

void BM_MlSuitePerColumn(benchmark::State& state) { benchMlSuite(state, 1); }
void BM_MlSuiteBatched(benchmark::State& state) { benchMlSuite(state, 32); }
void BM_MlSuitePrecisionFp32(benchmark::State& state) {
  benchMlSuite(state, 32, ml::Precision::kFp32);
}
void BM_MlSuitePrecisionBf16(benchmark::State& state) {
  benchMlSuite(state, 32, ml::Precision::kBf16);
}
void BM_MlSuitePrecisionInt8(benchmark::State& state) {
  benchMlSuite(state, 32, ml::Precision::kInt8);
}

} // namespace

BENCHMARK_TEMPLATE(BM_PrimalNormalFlux, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_PrimalNormalFlux, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_DivAtCell, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_DivAtCell, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ComputeRrr, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ComputeRrr, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_CoriolisTerm, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_CoriolisTerm, float)->Unit(benchmark::kMillisecond);

BENCHMARK_TEMPLATE(BM_UnfusedEdgeFluxes, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedEdgeFluxes, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_UnfusedEdgeFluxes, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedEdgeFluxes, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_UnfusedCellDiagnostics, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedCellDiagnostics, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_UnfusedCellDiagnostics, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedCellDiagnostics, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_UnfusedMomentumTendency, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedMomentumTendency, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_UnfusedMomentumTendency, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedMomentumTendency, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedVertexDiagnostics, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedVertexDiagnostics, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedScalarTendencies, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedScalarTendencies, float)->Unit(benchmark::kMillisecond);
// SimdBackend (best dispatch tier) vs the Host instantiation: pair each
// BM_Simd* with the matching BM_Fused* above. The label on each Simd run
// records which tier actually executed.
BENCHMARK_TEMPLATE(BM_SimdEdgeFluxes, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdEdgeFluxes, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdCellDiagnostics, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdCellDiagnostics, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdVertexDiagnostics, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdVertexDiagnostics, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdScalarTendencies, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdScalarTendencies, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdMomentumTendency, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdMomentumTendency, float)->Unit(benchmark::kMillisecond);
// Pre-refactor raw-pointer bodies vs the backend-layer instantiations the
// production kernels now run: each Legacy/Fused pair must be within noise.
BENCHMARK_TEMPLATE(BM_LegacyFusedEdgeFluxes, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_LegacyFusedEdgeFluxes, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_LegacyFusedCellDiagnostics, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_LegacyFusedCellDiagnostics, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_LegacyFusedMomentumTendency, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_LegacyFusedMomentumTendency, float)->Unit(benchmark::kMillisecond);

BENCHMARK_TEMPLATE(BM_UnfusedTendencyPipeline, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedTendencyPipeline, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_UnfusedTendencyPipeline, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_FusedTendencyPipeline, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdTendencyPipeline, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_SimdTendencyPipeline, float)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_VertImplicitSolver)->Unit(benchmark::kMillisecond);

// Square, conv-shaped (Fig. 8 res-unit conv at column_block=32), and
// MLP-shaped (hidden x hidden over a column block).
BENCHMARK(BM_GemmNaive)->Args({256, 256, 256})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmBlocked)->Args({256, 256, 256})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmNaive)->Args({24, 640, 72})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmBlocked)->Args({24, 640, 72})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmNaive)->Args({48, 32, 48})->Unit(benchmark::kMicrosecond);
BENCHMARK(BM_GemmBlocked)->Args({48, 32, 48})->Unit(benchmark::kMicrosecond);
// Quantized partners for the blocked-SGEMM shapes above (the {24, 640, 72}
// conv shape is the bf16 >= 1.3x / int8 >= 1.6x acceptance number).
BENCHMARK(BM_GemmQuantBf16)->Args({256, 256, 256})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmQuantInt8)->Args({256, 256, 256})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmQuantBf16)->Args({24, 640, 72})->Unit(benchmark::kMillisecond);
BENCHMARK(BM_GemmQuantInt8)->Args({24, 640, 72})->Unit(benchmark::kMillisecond);

BENCHMARK(BM_MlSuitePerColumn)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MlSuiteBatched)->Unit(benchmark::kMillisecond);
// Columns/s vs inference precision at the batched configuration (recorded
// to BENCH_quantized_ml.json by scripts/check.sh's quant stage).
BENCHMARK(BM_MlSuitePrecisionFp32)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MlSuitePrecisionBf16)->Unit(benchmark::kMillisecond);
BENCHMARK(BM_MlSuitePrecisionInt8)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
