// Host-side microbenchmarks (google-benchmark) of the production dycore
// kernels in both precisions. These are NOT a paper figure; they document
// this build's raw kernel throughput, and back the note in section 4.6 that
// mixed precision alone buys little on a conventional cache-rich CPU (the
// big wins in Fig. 9 come from the CPE memory system, reproduced in
// bench_fig9_kernels).
#include <benchmark/benchmark.h>

#include "grist/dycore/kernels.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/parallel/field.hpp"

namespace {

using namespace grist;

struct Fixture {
  grid::HexMesh mesh = grid::buildHexMesh(5);
  grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  int nlev = 30;
  parallel::Field delp{mesh.ncells, nlev, 500.0};
  parallel::Field theta{mesh.ncells, nlev, 300.0};
  parallel::Field phi{mesh.ncells, nlev + 1, 0.0};
  parallel::Field u{mesh.nedges, nlev, 10.0};
  parallel::Field flux{mesh.nedges, nlev, 0.0};
  parallel::Field out_cell{mesh.ncells, nlev, 0.0};
  parallel::Field out_edge{mesh.nedges, nlev, 0.0};
  parallel::Field vor{mesh.nvertices, nlev, 0.0};
  parallel::Field qv{mesh.nvertices, nlev, 1.0e-8};

  Fixture() {
    // Hydrostatic-ish phi so compute_rrr's pow() sees sane ratios.
    for (Index c = 0; c < mesh.ncells; ++c) {
      for (int k = nlev; k >= 0; --k) phi(c, k) = (nlev - k) * 2000.0;
    }
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

template <typename NS>
void BM_PrimalNormalFlux(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    dycore::kernels::primalNormalFluxEdge<NS>(f.mesh, f.mesh.nedges, f.nlev,
                                              f.delp.data(), f.u.data(),
                                              f.flux.data());
    benchmark::DoNotOptimize(f.flux.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

template <typename NS>
void BM_DivAtCell(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    dycore::kernels::divAtCell<NS>(f.mesh, f.mesh.ncells, f.nlev, f.flux.data(),
                                   f.out_cell.data());
    benchmark::DoNotOptimize(f.out_cell.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

template <typename NS>
void BM_ComputeRrr(benchmark::State& state) {
  Fixture& f = fixture();
  parallel::Field alpha(f.mesh.ncells, f.nlev), p(f.mesh.ncells, f.nlev),
      exner(f.mesh.ncells, f.nlev), pi(f.mesh.ncells, f.nlev);
  for (auto _ : state) {
    dycore::kernels::computeRrr<NS>(f.mesh.ncells, f.nlev, 225.0, f.delp.data(),
                                    f.theta.data(), f.phi.data(), alpha.data(),
                                    p.data(), exner.data(), pi.data());
    benchmark::DoNotOptimize(p.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.ncells * f.nlev);
}

template <typename NS>
void BM_CoriolisTerm(benchmark::State& state) {
  Fixture& f = fixture();
  for (auto _ : state) {
    f.out_edge.fill(0.0);
    dycore::kernels::calcCoriolisTerm<NS>(f.mesh, f.trsk, f.mesh.nedges, f.nlev,
                                          f.flux.data(), f.qv.data(),
                                          f.out_edge.data());
    benchmark::DoNotOptimize(f.out_edge.data());
  }
  state.SetItemsProcessed(state.iterations() * f.mesh.nedges * f.nlev);
}

} // namespace

BENCHMARK_TEMPLATE(BM_PrimalNormalFlux, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_PrimalNormalFlux, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_DivAtCell, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_DivAtCell, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ComputeRrr, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_ComputeRrr, float)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_CoriolisTerm, double)->Unit(benchmark::kMillisecond);
BENCHMARK_TEMPLATE(BM_CoriolisTerm, float)->Unit(benchmark::kMillisecond);

BENCHMARK_MAIN();
