// Table 3 reproduction: the four scheme configurations (DP/MIX dycore x
// Conventional/ML physics), each run LIVE on a G4 grid for two simulated
// hours. Reports wall time, SDPD on this host, and the mixed-precision
// accuracy gate (rel-L2 of ps and vor vs the DP-PHY gold standard).
#include <cstdio>
#include <memory>

#include "grist/common/timer.hpp"
#include "grist/core/model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/table.hpp"
#include "grist/ml/traindata.hpp"
#include "grist/precision/norms.hpp"

using namespace grist;

namespace {

// Distill small nets from the conventional suite so the ML rows are "real".
void trainNets(int nlev, std::shared_ptr<ml::Q1Q2Net>& q1q2,
               std::shared_ptr<ml::RadMlp>& rad) {
  ml::Q1Q2NetConfig qcfg;
  qcfg.nlev = nlev;
  qcfg.channels = 24;
  qcfg.res_units = 2;
  q1q2 = std::make_shared<ml::Q1Q2Net>(qcfg);
  ml::RadMlpConfig rcfg;
  rcfg.nlev = nlev;
  rcfg.hidden = 48;
  rad = std::make_shared<ml::RadMlp>(rcfg);

  std::vector<ml::ColumnSample> cols;
  std::vector<ml::RadSample> rads;
  for (const auto& sc : ml::table1Scenarios()) {
    physics::PhysicsInput in = ml::synthesizeColumns(sc, 192, nlev);
    physics::ConventionalSuite conv(in.ncolumns, nlev);
    ml::harvestSamples(in, conv, 600.0, cols, rads);
  }
  q1q2->fitNormalization(cols);
  rad->fitNormalization(rads);
  ml::Adam a1(ml::AdamConfig{.lr = 2e-3f}), a2(ml::AdamConfig{.lr = 2e-3f});
  a1.registerParams(q1q2->paramViews());
  a2.registerParams(rad->paramViews());
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (std::size_t base = 0; base + 64 <= cols.size(); base += 64) {
      std::vector<ml::ColumnSample> batch(cols.begin() + base, cols.begin() + base + 64);
      q1q2->trainBatch(batch, a1);
    }
    rad->trainBatch(rads, a2);
  }
}

} // namespace

int main() {
  std::printf("== Table 3: configuration of our schemes (live G4 runs) ==\n\n");
  const grid::HexMesh mesh = grid::buildHexMesh(4);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);

  core::ModelConfig base;
  base.dyn.nlev = 20;
  base.dyn.dt = 300.0;
  base.trac_interval = 8;
  base.phy_interval = 15;
  const int nsteps = 24;  // two simulated hours

  std::shared_ptr<ml::Q1Q2Net> q1q2;
  std::shared_ptr<ml::RadMlp> rad;
  trainNets(base.dyn.nlev, q1q2, rad);

  struct Result {
    const char* dycore;
    const char* physics;
    std::string label;
    double wall = 0, sdpd = 0, ps_err = 0, vor_err = 0;
  };
  std::vector<Result> results;
  std::vector<double> gold_ps, gold_vor;

  for (const bool mix : {false, true}) {
    for (const bool use_ml : {false, true}) {
      core::ModelConfig cfg = base;
      cfg.dyn.ns = mix ? precision::NsMode::kSingle : precision::NsMode::kDouble;
      cfg.scheme = use_ml ? core::PhysicsScheme::kMl
                          : core::PhysicsScheme::kConventional;
      cfg.q1q2 = q1q2;
      cfg.rad_mlp = rad;
      core::Model model(mesh, trsk, cfg,
                        dycore::initBaroclinicWave(mesh, cfg.dyn, 3));
      Timer timer;
      model.run(nsteps);
      const double wall = timer.elapsed();
      Result r;
      r.dycore = mix ? "mixed precision" : "double precision";
      r.physics = use_ml ? "ML-physics" : "Conventional";
      r.label = model.schemeName();
      r.wall = wall;
      r.sdpd = model.simDays() / (wall / 86400.0);
      const auto ps = model.state().surfacePressure(cfg.dyn.ptop);
      const auto vor = model.dycore().relativeVorticity(model.state());
      if (r.label == "DP-PHY") {
        gold_ps = ps;
        gold_vor = vor;
      }
      if (!gold_ps.empty()) {
        r.ps_err = precision::relativeL2(ps, gold_ps);
        r.vor_err = precision::relativeL2(vor, gold_vor);
      }
      results.push_back(std::move(r));
    }
  }

  io::Table table({"Label", "Dycore", "Physics", "Wall (s)", "SDPD (host)",
                   "relL2(ps) vs DP-PHY", "relL2(vor) vs DP-PHY"});
  const auto sci = [](double v) {
    char buf[24];
    std::snprintf(buf, sizeof buf, "%.2e", v);
    return std::string(buf);
  };
  for (const Result& r : results) {
    table.addRow({r.label, r.dycore, r.physics, io::Table::num(r.wall, 2),
                  io::Table::num(r.sdpd, 0), sci(r.ps_err), sci(r.vor_err)});
  }
  table.print();
  std::printf(
      "\nGate (paper section 3.4.1): mixed-precision ps/vor deviations must stay\n"
      "under the 5%% threshold vs the double-precision gold standard.\n"
      "Note: ML rows differ from DP-PHY by design (different physics), so the\n"
      "rel-L2 columns are only an acceptance gate for the MIX-PHY row.\n");
  return 0;
}
