// Fig. 11 reproduction: strong scaling from 32,768 to 524,288 processes for
// all four G12 scheme configurations plus G11S under MIX-ML. The per-cell
// cost curves come from the SW26010P simulator, so the cache-driven
// efficiency behaviors the paper describes (G12's slowing decline, G11S's
// superlinear bump when per-CG arrays start fitting the LDCache) emerge
// from the model rather than being painted in.
#include <cstdio>

#include "grist/io/table.hpp"
#include "scaling_common.hpp"

using namespace grist;

int main() {
  std::printf("== Fig. 11: strong scaling of the model ==\n\n");
  const bench::CalibratedProjector cal = bench::makeCalibratedProjector(true);
  network::SdpdProjector proj(cal.config);

  const std::vector<Index> procs = {32768, 65536, 131072, 262144, 524288};

  struct Series {
    const char* name;
    int level;
    double dt;
    network::SchemeCost scheme;
  };
  const Series series[] = {
      {"G12 DP-PHY", 12, 4.0, {.mixed_precision = false, .ml_physics = false}},
      {"G12 DP-ML", 12, 4.0, {.mixed_precision = false, .ml_physics = true}},
      {"G12 MIX-PHY", 12, 4.0, {.mixed_precision = true, .ml_physics = false}},
      {"G12 MIX-ML", 12, 4.0, {.mixed_precision = true, .ml_physics = true}},
      // G11S uses its own doubled timestep (Table 2: Dyn = 8 s).
      {"G11S MIX-ML", 11, 8.0, {.mixed_precision = true, .ml_physics = true}},
  };

  for (const Series& s : series) {
    std::printf("-- %s --\n", s.name);
    const auto points = proj.strongScaling(s.level, 30, s.dt, procs, s.scheme);
    io::Table table({"Processes", "Cells/CG", "SDPD", "Strong efficiency",
                     "Comm share"});
    const auto counts = grid::countsForLevel(s.level);
    for (const auto& p : points) {
      table.addRow({std::to_string(p.ncgs),
                    io::Table::num(static_cast<double>(counts.cells) / p.ncgs, 0),
                    io::Table::num(p.sdpd, 1), io::Table::num(p.efficiency, 3),
                    io::Table::num(p.comm_share, 3)});
    }
    table.print();
    std::printf("\n");
  }

  std::printf(
      "Paper anchors (section 4.8): 491 SDPD for G11S and 181 SDPD for G12\n"
      "at 524,288 processes (the G12 MIX-ML endpoint is the calibration\n"
      "anchor; everything else is a model prediction). Expected shape:\n"
      "G12 efficiency declines with a decreasing rate; G11S shows a\n"
      "cache-driven uptick at the largest scales; MIX > DP and ML > PHY.\n");
  return 0;
}
