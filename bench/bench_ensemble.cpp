// Batched ensemble engine vs M independent Model instances (google-
// benchmark): the members/s acceptance pair for the EnsembleRunner.
//
// Configuration matches the solo-model throughput setup the README table
// quotes: G4 (2562 cells), nlev 20, DP dycore, fp32 ML physics suite
// (q1q2 channels 24 / res 2, rad hidden 48), default cadences (tracer
// every 8, physics every 15 dynamics steps), M = 8 perturbed members.
// Three variants, identical numerics (the ENSEMBLE ctest label asserts
// bitwise member-vs-solo identity):
//   BM_SoloModels           -- M independent Model instances, the baseline
//   BM_EnsembleBatched      -- EnsembleRunner, cross-member fused GEMMs
//   BM_EnsemblePerMemberGemm-- EnsembleRunner, per-member GEMMs (isolates
//                              the GEMM-batching contribution)
// Record to BENCH_ensemble.json via the GRIST_ENSEMBLE_BENCH=1 stage of
// scripts/check.sh; a committed baseline turns the run into a >5%
// regression gate through scripts/bench_compare.py.
//
// Every fixture makes one untimed warm-up run before the timing loop so
// the first measured iteration sees grown Workspace arenas and warm OpenMP
// teams, not first-touch costs.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "grist/core/ensemble_runner.hpp"
#include "grist/core/model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"

namespace {

using namespace grist;

constexpr int kGlevel = 4;
constexpr int kNlev = 20;
constexpr int kMembers = 8;
constexpr int kStepsPerIter = 15;  // one full physics window per iteration
constexpr std::uint64_t kSeed = 42;

core::ModelConfig modelConfig() {
  core::ModelConfig mc;
  mc.dyn.nlev = kNlev;
  mc.dyn.dt = 300.0;
  mc.dyn.ns = precision::NsMode::kDouble;
  mc.scheme = core::PhysicsScheme::kMl;
  ml::Q1Q2NetConfig qcfg;
  qcfg.nlev = kNlev;
  qcfg.channels = 24;
  qcfg.res_units = 2;
  mc.q1q2 = std::make_shared<ml::Q1Q2Net>(qcfg);
  ml::RadMlpConfig rcfg;
  rcfg.nlev = kNlev;
  rcfg.hidden = 48;
  mc.rad_mlp = std::make_shared<ml::RadMlp>(rcfg);
  return mc;
}

struct Fixture {
  grid::HexMesh mesh;
  grid::TrskWeights trsk;
  core::ModelConfig mc;
  dycore::State initial;

  Fixture()
      : mesh(grid::buildHexMesh(kGlevel)), trsk(grid::buildTrskWeights(mesh)),
        mc(modelConfig()), initial(dycore::initBaroclinicWave(mesh, mc.dyn, 3)) {}

  dycore::State memberState(int m) const {
    dycore::State s = initial;
    core::EnsembleRunner::perturbState(
        s, core::EnsembleRunner::memberSeed(kSeed, m), 1e-3);
    return s;
  }
};

Fixture& fixture() {
  static Fixture f;
  return f;
}

void addMemberStepsRate(benchmark::State& state) {
  state.counters["member_steps_per_s"] = benchmark::Counter(
      static_cast<double>(kMembers) * kStepsPerIter,
      benchmark::Counter::kIsIterationInvariantRate);
}

void BM_SoloModels(benchmark::State& state) {
  Fixture& f = fixture();
  std::vector<std::unique_ptr<core::Model>> models;
  for (int m = 0; m < kMembers; ++m) {
    models.push_back(std::make_unique<core::Model>(f.mesh, f.trsk, f.mc,
                                                   f.memberState(m)));
  }
  for (auto& model : models) model->run(kStepsPerIter);  // warm-up, untimed
  for (auto _ : state) {
    for (auto& model : models) model->run(kStepsPerIter);
  }
  addMemberStepsRate(state);
}
BENCHMARK(BM_SoloModels)->Unit(benchmark::kMillisecond);

void runEnsembleVariant(benchmark::State& state, bool cross_member_gemm) {
  Fixture& f = fixture();
  core::EnsembleConfig ec;
  ec.model = f.mc;
  ec.members = kMembers;
  ec.perturb_seed = kSeed;
  ec.cross_member_gemm = cross_member_gemm;
  core::EnsembleRunner runner(f.mesh, f.trsk, ec, f.initial);
  runner.run(kStepsPerIter);  // warm-up, untimed
  for (auto _ : state) {
    runner.run(kStepsPerIter);
  }
  addMemberStepsRate(state);
}

void BM_EnsembleBatched(benchmark::State& state) {
  runEnsembleVariant(state, /*cross_member_gemm=*/true);
}
BENCHMARK(BM_EnsembleBatched)->Unit(benchmark::kMillisecond);

void BM_EnsemblePerMemberGemm(benchmark::State& state) {
  runEnsembleVariant(state, /*cross_member_gemm=*/false);
}
BENCHMARK(BM_EnsemblePerMemberGemm)->Unit(benchmark::kMillisecond);

} // namespace

BENCHMARK_MAIN();
