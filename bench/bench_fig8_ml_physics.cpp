// Fig. 8 reproduction: the resolution-adaptive ML physics suite.
//  (a)(b) short-term weather: 3-hour rainfall from the conventional vs the
//         ML suite at the finest affordable grid;
//  (c)-(f) climate: multi-day mean rainfall at a coarse (G6-analog) and a
//         finer (G8-analog) grid, conventional vs ML.
// The ML suite is trained ONCE on coarse-grained conventional-physics data
// (the distillation analog of the paper's 5 km -> 30 km pipeline) and then
// reused unchanged at every resolution -- the paper's "resolution-adaptive"
// property under test.
#include <chrono>
#include <cstdio>
#include <memory>

#include "grist/backend/quant.hpp"
#include "grist/core/model.hpp"
#include "grist/coupler/coupler.hpp"
#include "grist/dycore/diagnostics.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/table.hpp"
#include "grist/ml/traindata.hpp"

using namespace grist;

namespace {

constexpr int kNlev = 20;

void trainSuite(std::shared_ptr<ml::Q1Q2Net>& q1q2, std::shared_ptr<ml::RadMlp>& rad) {
  ml::Q1Q2NetConfig qcfg;
  qcfg.nlev = kNlev;
  qcfg.channels = 24;
  qcfg.res_units = 2;
  q1q2 = std::make_shared<ml::Q1Q2Net>(qcfg);
  ml::RadMlpConfig rcfg;
  rcfg.nlev = kNlev;
  rcfg.hidden = 48;
  rad = std::make_shared<ml::RadMlp>(rcfg);

  std::vector<ml::ColumnSample> cols;
  std::vector<ml::RadSample> rads;
  // (1) Scenario-conditioned columns (Table 1 diversity)...
  for (const auto& sc : ml::table1Scenarios()) {
    physics::PhysicsInput in = ml::synthesizeColumns(sc, 256, kNlev);
    physics::ConventionalSuite conv(in.ncolumns, kNlev);
    ml::harvestSamples(in, conv, 600.0, cols, rads);
  }
  // (2) ...plus columns harvested from an actual conventional-physics model
  // run (the paper trains on its own GSRM output).
  {
    const grid::HexMesh mesh = grid::buildHexMesh(4);
    const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
    core::ModelConfig cfg;
    cfg.dyn.nlev = kNlev;
    cfg.dyn.dt = 450.0;
    cfg.dyn.w_damp_tau = 900.0;
    cfg.dyn.div_damp = 0.06;
    cfg.dyn.diff_coef = 0.02;
    cfg.trac_interval = 4;
    cfg.phy_interval = 4;
    core::Model model(mesh, trsk, cfg, dycore::initBaroclinicWave(mesh, cfg.dyn, 3));
    coupler::Coupler coupler(mesh, kNlev);
    physics::ConventionalSuite harvest_suite(mesh.ncells, kNlev);
    physics::PhysicsInput in(mesh.ncells, kNlev);
    for (int snap = 0; snap < 8; ++snap) {
      model.run(24);  // 3 simulated hours apart
      coupler.stateToPhysics(model.state(), model.tskin(), model.simSeconds(), in);
      std::vector<ml::ColumnSample> all_cols;
      std::vector<ml::RadSample> all_rads;
      ml::harvestSamples(in, harvest_suite, cfg.phy_interval * cfg.dyn.dt, all_cols,
                         all_rads);
      // Subsample to keep training affordable.
      for (std::size_t i = 0; i < all_cols.size(); i += 4) {
        cols.push_back(std::move(all_cols[i]));
        rads.push_back(std::move(all_rads[i]));
      }
    }
  }
  std::printf("   training set: %zu column samples\n", cols.size());
  std::vector<ml::ColumnSample> train, test;
  ml::splitTrainTest(cols, 2025, train, test);
  q1q2->fitNormalization(train);
  rad->fitNormalization(rads);
  ml::Adam a1(ml::AdamConfig{.lr = 2e-3f}), a2(ml::AdamConfig{.lr = 2e-3f});
  a1.registerParams(q1q2->paramViews());
  a2.registerParams(rad->paramViews());
  const double before = q1q2->evaluate(test);
  for (int epoch = 0; epoch < 8; ++epoch) {
    for (std::size_t base = 0; base + 64 <= train.size(); base += 64) {
      std::vector<ml::ColumnSample> batch(train.begin() + base,
                                          train.begin() + base + 64);
      q1q2->trainBatch(batch, a1);
    }
    rad->trainBatch(rads, a2);
  }
  std::printf("   Q1/Q2 CNN test loss (normalized MSE): %.3f -> %.3f\n", before,
              q1q2->evaluate(test));
}

struct RunOut {
  std::vector<double> rain;  // mm/day on the run's own grid
  double tropical_band = 0;  // mean rain rate |lat| < 20 deg
  double extratropics = 0;   // mean rain rate |lat| > 40 deg
  bool stable = true;
};

RunOut runClimate(int level, bool use_ml, int nsteps, double dt,
                  const std::shared_ptr<ml::Q1Q2Net>& q1q2,
                  const std::shared_ptr<ml::RadMlp>& rad) {
  const grid::HexMesh mesh = grid::buildHexMesh(level);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  core::ModelConfig cfg;
  cfg.dyn.nlev = kNlev;
  cfg.dyn.dt = dt;
  // Hydrostatic-scale stabilizers (see bench_fig7_typhoon.cpp).
  cfg.dyn.w_damp_tau = 2.0 * dt;
  cfg.dyn.div_damp = 0.06;
  cfg.dyn.diff_coef = 0.02;
  cfg.trac_interval = 4;
  cfg.phy_interval = 4;
  cfg.scheme = use_ml ? core::PhysicsScheme::kMl : core::PhysicsScheme::kConventional;
  cfg.q1q2 = q1q2;
  cfg.rad_mlp = rad;
  core::Model model(mesh, trsk, cfg, dycore::initBaroclinicWave(mesh, cfg.dyn, 3));
  model.run(nsteps);
  RunOut out;
  out.rain = model.meanPrecipRate();
  double trop = 0, trop_area = 0, extra = 0, extra_area = 0;
  for (Index c = 0; c < mesh.ncells; ++c) {
    if (!std::isfinite(out.rain[c])) out.stable = false;
    const double lat = std::abs(mesh.cell_ll[c].lat);
    if (lat < 0.349) {
      trop += out.rain[c] * mesh.cell_area[c];
      trop_area += mesh.cell_area[c];
    } else if (lat > 0.698) {
      extra += out.rain[c] * mesh.cell_area[c];
      extra_area += mesh.cell_area[c];
    }
  }
  out.tropical_band = trop / trop_area;
  out.extratropics = extra / extra_area;
  return out;
}

// Inference-precision sweep over the TRAINED suite (quantizing an untrained
// random net says nothing about the acceptance envelope): columns/s and the
// gate's rel-L2 per output at fp32 / bf16 / int8. Follows the warm-up
// convention of bench_host_kernels: one untimed invocation per configuration
// before the timing loop, so the first measured run sees warm Workspace
// arenas and an already-built, already-gated quantized snapshot.
void precisionSweep(const std::shared_ptr<ml::Q1Q2Net>& q1q2,
                    const std::shared_ptr<ml::RadMlp>& rad) {
  const Index ncol = 1024;
  physics::PhysicsInput in =
      ml::synthesizeColumns(ml::table1Scenarios()[0], ncol, kNlev);
  io::Table table({"Precision", "Kernel", "Columns/s", "Speedup",
                   "Worst gate rel-L2"});
  double fp32_rate = 0.0;
  for (const ml::Precision prec :
       {ml::Precision::kFp32, ml::Precision::kBf16, ml::Precision::kInt8}) {
    ml::MlSuiteConfig cfg;
    cfg.precision = prec;
    ml::MlPhysicsSuite suite(ncol, kNlev, q1q2, rad, cfg);
    physics::PhysicsOutput out(ncol, kNlev);
    suite.run(in, 600.0, out);  // untimed warm-up: arenas, snapshot, gate
    const int reps = 20;
    const auto t0 = std::chrono::steady_clock::now();
    for (int r = 0; r < reps; ++r) suite.run(in, 600.0, out);
    const std::chrono::duration<double> dt =
        std::chrono::steady_clock::now() - t0;
    const double rate = reps * static_cast<double>(ncol) / dt.count();
    if (prec == ml::Precision::kFp32) fp32_rate = rate;
    double worst = 0.0;
    for (const auto& [var, rel] : suite.quantGateRecords()) {
      worst = std::max(worst, rel);
    }
    table.addRow({ml::precisionName(prec),
                  prec == ml::Precision::kFp32 ? "sgemm-packed"
                                               : backend::quant::table().name,
                  io::Table::num(rate, 0),
                  io::Table::num(rate / fp32_rate, 2) + "x",
                  prec == ml::Precision::kFp32 ? "-" : io::Table::num(worst, 4)});
  }
  table.print();
}

} // namespace

int main() {
  std::printf("== Fig. 8: conventional vs ML-based parameterization ==\n\n");
  std::printf("-- training the ML suite (distillation from the conventional\n"
              "   suite on Table 1 scenario columns; paper: 5km -> 30km\n"
              "   coarse-grained GSRM data) --\n");
  std::shared_ptr<ml::Q1Q2Net> q1q2;
  std::shared_ptr<ml::RadMlp> rad;
  trainSuite(q1q2, rad);

  // ---- quantized-inference sweep on the trained suite ----
  std::printf("\n-- inference precision sweep (quantized ML physics,\n"
              "   Table 3 rel-L2 acceptance gate at %.0f%%) --\n",
              100.0 * ml::MlSuiteConfig{}.quant_tolerance);
  precisionSweep(q1q2, rad);

  // ---- (a)(b): 3-hour weather run at the finest affordable grid ----
  std::printf("\n-- (a)(b) 3-hour weather integration, G5 (G12 analog) --\n");
  const RunOut conv_fine = runClimate(5, false, 36, 300.0, q1q2, rad);
  const RunOut ml_fine = runClimate(5, true, 36, 300.0, q1q2, rad);
  {
    const grid::HexMesh mesh = grid::buildHexMesh(5);
    const double corr = dycore::patternCorrelation(mesh, ml_fine.rain, conv_fine.rain);
    io::Table table({"Suite", "Stable", "Tropical rain (mm/day)",
                     "Pattern corr vs conventional"});
    table.addRow({"Conventional", conv_fine.stable ? "yes" : "NO",
                  io::Table::num(conv_fine.tropical_band, 2), "1.000"});
    table.addRow({"ML-physics", ml_fine.stable ? "yes" : "NO",
                  io::Table::num(ml_fine.tropical_band, 2), io::Table::num(corr, 3)});
    table.print();
  }

  // ---- (c)-(f): multi-day "climate" at two resolutions ----
  std::printf("\n-- (c)-(f) 2-day climate integrations (annual-mean analog) --\n");
  io::Table table({"Grid", "Analog of", "Suite", "Stable",
                   "Tropics (mm/day)", "Extratropics", "Band contrast"});
  struct Case {
    int level;
    const char* analog;
    int nsteps;
    double dt;
  };
  const Case cases[] = {{3, "G6 (92-113 km)", 288, 600.0},
                        {4, "G8 (22-28 km)", 384, 450.0}};
  for (const Case& cs : cases) {
    for (const bool use_ml : {false, true}) {
      const RunOut out = runClimate(cs.level, use_ml, cs.nsteps, cs.dt, q1q2, rad);
      const double contrast =
          out.extratropics > 1e-12 ? out.tropical_band / out.extratropics : 0.0;
      table.addRow({"G" + std::to_string(cs.level), cs.analog,
                    use_ml ? "ML-physics" : "Conventional",
                    out.stable ? "yes" : "NO", io::Table::num(out.tropical_band, 2),
                    io::Table::num(out.extratropics, 2),
                    contrast > 0 ? io::Table::num(contrast, 1) : "inf"});
    }
  }
  table.print();

  std::printf(
      "\nPaper's findings to compare: the ML suite (trained once, at one\n"
      "resolution) reproduces the observed rainfall band at BOTH grids and\n"
      "keeps multi-year runs stable; short 3-hour weather stays reasonable\n"
      "even beyond the training resolution. Here \"band contrast\" > 1 means\n"
      "a tropical rain band is present.\n");
  return 0;
}
