// Fig. 7 reproduction: the "23.7" extreme-rainfall experiment. The paper
// runs super-typhoon Doksuri at G11L60 (coarser horizontal, finer vertical)
// and G12L30 (finer horizontal, coarser vertical) against CMPA rain
// observations, and finds the finer HORIZONTAL grid wins: better rain band,
// higher spatial correlation.
//
// Data-gate substitution (DESIGN.md): ERA5 initial conditions and CMPA
// observations are proprietary, so the storm is an idealized warm-core
// vortex and the "observation" is the finest run (G6L30) coarse-grained to
// the comparison grid. The claim under test is the resolution ORDERING.
#include <cstdio>

#include "grist/common/timer.hpp"
#include "grist/core/model.hpp"
#include "grist/dycore/diagnostics.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/table.hpp"
#include "grist/ml/traindata.hpp"

using namespace grist;

namespace {

struct RunResult {
  std::vector<double> rain_on_comparison_grid;  // mm/day, G4 cells
  double max_rain = 0;
  double wall = 0;
};

// Map a run's rain field onto the comparison grid: fine grids aggregate
// (area-weighted), coarser grids inject by nearest-cell lookup -- exactly
// how the paper regrids model output onto the verification grid.
std::vector<double> regrid(const grid::HexMesh& from, const grid::HexMesh& to,
                           const std::vector<double>& rain) {
  std::vector<double> out(to.ncells);
  if (from.ncells >= to.ncells) {
    const std::vector<Index> map = ml::coarseMap(from, to);
    parallel::Field field(from.ncells, 1);
    for (Index c = 0; c < from.ncells; ++c) field(c, 0) = rain[c];
    const parallel::Field agg = ml::coarseGrainCells(from, to, map, field);
    for (Index c = 0; c < to.ncells; ++c) out[c] = agg(c, 0);
  } else {
    const std::vector<Index> map = ml::coarseMap(to, from);  // to-cell -> from-cell
    for (Index c = 0; c < to.ncells; ++c) out[c] = rain[map[c]];
  }
  return out;
}

RunResult runCase(int level, int nlev, double dt, int nsteps,
                  const grid::HexMesh& comparison_grid) {
  const grid::HexMesh mesh = grid::buildHexMesh(level);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  core::ModelConfig cfg;
  cfg.dyn.nlev = nlev;
  cfg.dyn.dt = dt;
  cfg.dyn.ns = precision::NsMode::kSingle;  // MIX, as the production runs
  // Hydrostatic-scale stabilizers: quasi-hydrostatic w damping and enhanced
  // horizontal dissipation (these grids cannot resolve the storm's moist
  // updrafts explicitly).
  cfg.dyn.w_damp_tau = 2.0 * dt;
  cfg.dyn.div_damp = 0.06;
  cfg.dyn.diff_coef = 0.02;
  cfg.trac_interval = 4;
  cfg.phy_interval = 4;
  dycore::TyphoonParams storm;  // same storm in every run
  core::Model model(mesh, trsk, cfg, dycore::initTyphoon(mesh, cfg.dyn, storm, 3));
  Timer timer;
  model.run(nsteps);
  RunResult out;
  out.wall = timer.elapsed();
  const std::vector<double> rain = model.meanPrecipRate();
  for (const double r : rain) out.max_rain = std::max(out.max_rain, r);
  out.rain_on_comparison_grid = regrid(mesh, comparison_grid, rain);
  return out;
}

} // namespace

int main() {
  std::printf(
      "== Fig. 7: idealized-typhoon extreme rainfall, resolution sensitivity ==\n"
      "   paper analog: G11L60 -> G4L40, G12L30 -> G5L20, CMPA obs -> G6L20 run\n\n");

  // Verification happens on the G5 grid (fine enough to discriminate the
  // rain-band structure), within 25 degrees of the storm center -- the
  // analog of the paper's North China verification box.
  const grid::HexMesh comparison = grid::buildHexMesh(5);
  const double hours = 6.0;
  dycore::TyphoonParams storm;
  const Vec3 center = toCartesian({storm.lon0, storm.lat0});
  std::vector<bool> storm_region(comparison.ncells);
  for (Index c = 0; c < comparison.ncells; ++c) {
    storm_region[c] =
        greatCircleDistance(comparison.cell_x[c], center, 1.0) < 25.0 * constants::kPi / 180.0;
  }

  // "Observation": the finest horizontal grid we can afford.
  std::printf("running truth (G6, ~112 km, 20 levels)...\n");
  const RunResult truth =
      runCase(6, 20, 120.0, static_cast<int>(hours * 3600 / 120), comparison);
  // Coarse horizontal, fine vertical (the G11L60 analog).
  std::printf("running coarse-horizontal case (G4, ~446 km, 40 levels)...\n");
  const RunResult coarse_h =
      runCase(4, 40, 300.0, static_cast<int>(hours * 3600 / 300), comparison);
  // Fine horizontal, coarse vertical (the G12L30 analog).
  std::printf("running fine-horizontal case (G5, ~223 km, 20 levels)...\n\n");
  const RunResult fine_h =
      runCase(5, 20, 240.0, static_cast<int>(hours * 3600 / 240), comparison);

  const double corr_coarse = dycore::patternCorrelation(
      comparison, coarse_h.rain_on_comparison_grid, truth.rain_on_comparison_grid,
      storm_region);
  const double corr_fine = dycore::patternCorrelation(
      comparison, fine_h.rain_on_comparison_grid, truth.rain_on_comparison_grid,
      storm_region);

  io::Table table({"Case", "Analog of", "Max rain (mm/day)",
                   "Spatial corr vs obs", "Wall (s)"});
  table.addRow({"G6L20 (truth)", "CMPA observation", io::Table::num(truth.max_rain, 1),
                "1.000", io::Table::num(truth.wall, 1)});
  table.addRow({"G4L40", "G11L60", io::Table::num(coarse_h.max_rain, 1),
                io::Table::num(corr_coarse, 3), io::Table::num(coarse_h.wall, 1)});
  table.addRow({"G5L20", "G12L30", io::Table::num(fine_h.max_rain, 1),
                io::Table::num(corr_fine, 3), io::Table::num(fine_h.wall, 1)});
  table.print();

  std::printf(
      "\nPaper's finding: the finer-horizontal G12L30 beats G11L60 on rain-band\n"
      "structure and spatial correlation despite having HALF the vertical\n"
      "levels (\"the increase of horizontal resolutions seems far more\n"
      "important than the increase of vertical levels\"). Reproduced iff\n"
      "corr(G5L20) > corr(G4L40): %s (%.3f vs %.3f)\n",
      corr_fine > corr_coarse ? "YES" : "NO", corr_fine, corr_coarse);
  return 0;
}
