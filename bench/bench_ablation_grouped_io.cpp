// Ablation: the grouped parallel I/O strategy of paper section 3.1.3.
// Sweeps the group size for a fixed rank count: file opens fall linearly
// with the group size while aggregation traffic rises, with the sweet spot
// in between -- the trade the paper's design makes at 10^5 processes.
#include <cstdio>
#include <filesystem>

#include "grist/common/timer.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/grouped_writer.hpp"
#include "grist/io/table.hpp"

using namespace grist;

int main() {
  std::printf("== Ablation: grouped parallel I/O (group-size sweep) ==\n\n");
  const grid::HexMesh mesh = grid::buildHexMesh(5);
  const Index nranks = 64;
  const parallel::Decomposition decomp = parallel::decompose(mesh, nranks);
  std::vector<parallel::Field> fields;
  for (Index r = 0; r < nranks; ++r) {
    parallel::Field f(decomp.domains[r].mesh.ncells, 30, 0.0);
    for (Index lc = 0; lc < decomp.domains[r].ncells_owned; ++lc) {
      for (int k = 0; k < 30; ++k) f(lc, k) = 0.001 * lc + k;
    }
    fields.push_back(std::move(f));
  }

  const auto dir = std::filesystem::temp_directory_path() / "grist_io_ablation";
  io::Table table({"Group size", "Files", "File opens", "Aggregation msgs",
                   "Wall (ms)"});
  for (const Index group : {Index{1}, Index{4}, Index{16}, Index{64}}) {
    std::filesystem::remove_all(dir);
    io::GroupedWriter writer(dir.string(), nranks, group);
    Timer timer;
    writer.writeCellField("state", decomp, fields);
    const double wall = timer.elapsed();
    table.addRow({std::to_string(group), std::to_string(writer.groups()),
                  std::to_string(writer.stats().file_opens),
                  std::to_string(writer.stats().aggregation_messages),
                  io::Table::num(wall * 1e3, 1)});
  }
  table.print();
  std::filesystem::remove_all(dir);

  std::printf(
      "\nExtrapolation: at the paper's 524,288 processes, per-rank output\n"
      "means 524,288 file creates per snapshot -- the filesystem collapse\n"
      "grouped I/O exists to avoid; with 256-rank groups it is 2,048.\n");
  return 0;
}
