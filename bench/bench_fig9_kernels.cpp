// Fig. 9 reproduction: per-kernel acceleration over 64 CPEs within one CG
// under the G6 grid, for the four configurations DP / DP+DST / MIX /
// MIX+DST, all relative to the MPE double-precision baseline. Runs on the
// SW26010P simulator (DESIGN.md documents the hardware substitution); the
// paper's observed band is ~20-70x for the best configurations.
#include <cstdio>

#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/io/table.hpp"
#include "grist/swgomp/sim_kernels.hpp"

int main() {
  using namespace grist;
  std::printf(
      "== Fig. 9: performance improvements on CPEs for major kernels ==\n"
      "   (speedup over the MPE-DP baseline; DST = memory address\n"
      "    distribution; simulated SW26010P, G6-class workload)\n\n");

  // One CG of the G6 case: 40962 cells / 128 CGs = 320 cells per CG -- but
  // Fig. 9 runs the G6 case within ONE node (128 processes -> 18 nodes in
  // the artifact; per-CG slice ~ a G3 mesh). We use the G3 mesh (642 cells)
  // as the per-CG slice, 30 levels as in Table 2.
  const grid::HexMesh mesh = grid::buildHexMesh(3);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);

  io::Table table({"Kernel", "DP", "DP+DST", "MIX", "MIX+DST"});
  for (const swgomp::SimKernel kernel : swgomp::allSimKernels()) {
    const swgomp::KernelSpeedups s =
        swgomp::measureKernelSpeedups(kernel, mesh, trsk, 30);
    table.addRow({s.kernel, io::Table::num(s.dp, 1) + "x",
                  io::Table::num(s.dp_dst, 1) + "x", io::Table::num(s.mix, 1) + "x",
                  io::Table::num(s.mix_dst, 1) + "x"});
  }
  table.print();

  std::printf(
      "\nExpected shape (paper section 4.6):\n"
      " - tracer_transport_hori_flux_limiter / compute_rrr: many arrays +\n"
      "   mixed-precision -> clear gains from both MIX and DST;\n"
      " - primal_normal_flux_edge: divide/pow heavy -> big MIX speedup;\n"
      " - calc_coriolis_term: arithmetic follows NS, but the indirect TRSK\n"
      "   gather dominates -> modest benefit from MIX and DST;\n"
      " - fused_* rows: single-sweep variants of the production tendency\n"
      "   pipeline (same backend kernel bodies the host dycore runs);\n"
      " - overall acceleration ~20-70x vs MPE-DP.\n");
  return 0;
}
