// Shared setup for the Fig. 10 / Fig. 11 scaling reproductions: measures
// per-cell dynamics cost curves on the SW26010P simulator (DP and MIX),
// derives the physics cost constants from the paper's FLOP/efficiency
// contrast, and calibrates ONE overall work multiplier against a single
// published anchor (G12, 524288 CGs, MIX-ML -> 181 SDPD). Everything else
// the benches print is a model prediction to be compared with the paper.
#pragma once

#include <cstdio>
#include <vector>

#include "grist/grid/hex_mesh.hpp"
#include "grist/grid/trsk.hpp"
#include "grist/network/projector.hpp"
#include "grist/swgomp/sim_kernels.hpp"

namespace grist::bench {

/// Sum of the instrumented kernel suite's cycles per (cell x level) for one
/// per-CG slice of `level`, in the given precision.
inline double measureCyclesPerCellLevel(int level, sunway::SimPrecision prec,
                                        int nlev = 30) {
  const grid::HexMesh mesh = grid::buildHexMesh(level);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  sunway::CoreGroup cg;
  swgomp::SimConfig cfg;
  cfg.nlev = nlev;
  cfg.precision = prec;
  cfg.policy = swgomp::AllocPolicy::kDistributed;  // production allocator
  cfg.on_cpe = true;
  double cycles = 0;
  for (const swgomp::SimKernel kernel : swgomp::allSimKernels()) {
    cycles += swgomp::runSimKernel(kernel, mesh, trsk, cfg, cg);
  }
  return cycles / (static_cast<double>(mesh.ncells) * nlev);
}

struct CalibratedProjector {
  network::ProjectorConfig config;
  double work_multiplier = 1.0;
};

/// Build the projector configuration. The kernel suite covers only the six
/// Fig. 9 hotspots of a 272-kLoC model, so a single multiplier (calibrated
/// to the G12 anchor) scales the measured curves up to full-model cost.
inline CalibratedProjector makeCalibratedProjector(bool verbose) {
  namespace nw = grist::network;
  // Per-CG working-set ladder: G1 (42 cells, LDCache-resident) ... G5
  // (10242 cells, far beyond the cache) spans the strong-scaling range.
  const std::vector<int> levels = {1, 2, 3, 4, 5};
  std::vector<double> cells, dp, mix;
  for (const int level : levels) {
    const grid::GridCounts counts = grid::countsForLevel(level);
    cells.push_back(static_cast<double>(counts.cells));
    dp.push_back(measureCyclesPerCellLevel(level, sunway::SimPrecision::kDouble));
    mix.push_back(measureCyclesPerCellLevel(level, sunway::SimPrecision::kSingle));
  }
  if (verbose) {
    std::printf("-- simulator cost curves (cycles per cell-level, DST allocator) --\n");
    for (std::size_t i = 0; i < cells.size(); ++i) {
      std::printf("   cells/CG %7.0f : DP %7.1f  MIX %7.1f\n", cells[i], dp[i], mix[i]);
    }
  }

  CalibratedProjector out;
  nw::ProjectorConfig& cfg = out.config;

  // Physics cost from the paper's efficiency contrast (section 4.7):
  // RRTMG-class conventional physics runs at ~6% of peak; the ML modules do
  // ~2x the FLOPs at 74-84% of peak. With ~760 flops per cell-level for the
  // radiation-dominated suite and an 8-wide FMA pipeline at peak:
  const double conv_flops = 760.0;
  cfg.phys_cycles_conv = conv_flops / 0.06 / 8.0;        // ~1583 cycles
  cfg.phys_cycles_ml = 2.0 * conv_flops / 0.79 / 8.0;    // ~240 cycles

  // Two documented calibration constants against the paper's two published
  // endpoints at 524,288 CGs under MIX-ML:
  //   work multiplier  -> G12 at 181 SDPD (full-model cost vs the six
  //                       instrumented hotspot kernels);
  //   fixed step floor -> G11S at 491 SDPD (serial per-step work that does
  //                       not shrink with the horizontal decomposition).
  const double target_g12 = 181.0, target_g11s = 491.0;
  const auto projected = [&](double mult, double fixed, int level, double dt) {
    nw::ProjectorConfig probe = cfg;
    auto scale = [mult](std::function<double(double)> f) {
      return [f = std::move(f), mult](double x) { return mult * f(x); };
    };
    probe.dyn_cycles_dp = scale(nw::interpolateCostCurve(cells, dp));
    probe.dyn_cycles_mix = scale(nw::interpolateCostCurve(cells, mix));
    probe.phys_cycles_conv = cfg.phys_cycles_conv * mult;
    probe.phys_cycles_ml = cfg.phys_cycles_ml * mult;
    probe.fixed_step_seconds = fixed;
    nw::SdpdProjector proj(probe);
    nw::SchemeCost scheme{.mixed_precision = true, .ml_physics = true};
    return proj.sdpd(level, 30, dt, 524288, scheme);
  };
  const auto fit_mult = [&](double fixed) {
    double lo = 0.01, hi = 400.0;
    for (int it = 0; it < 60; ++it) {
      const double mid = 0.5 * (lo + hi);
      (projected(mid, fixed, 12, 4.0) > target_g12 ? lo : hi) = mid;
    }
    return 0.5 * (lo + hi);
  };
  double fixed_lo = 0.0, fixed_hi = 0.05;
  for (int it = 0; it < 50; ++it) {
    const double mid = 0.5 * (fixed_lo + fixed_hi);
    const double g11s = projected(fit_mult(mid), mid, 11, 8.0);
    (g11s > target_g11s ? fixed_lo : fixed_hi) = mid;
  }
  const double fixed = 0.5 * (fixed_lo + fixed_hi);
  out.work_multiplier = fit_mult(fixed);
  cfg.fixed_step_seconds = fixed;
  if (verbose) {
    std::printf(
        "-- calibration: work multiplier %.2f (G12 anchor: 181 SDPD),\n"
        "   serial step floor %.2f ms (G11S anchor: 491 SDPD) --\n\n",
        out.work_multiplier, fixed * 1e3);
  }
  const double mult = out.work_multiplier;
  auto scale = [mult](std::function<double(double)> f) {
    return [f = std::move(f), mult](double x) { return mult * f(x); };
  };
  cfg.dyn_cycles_dp = scale(nw::interpolateCostCurve(cells, dp));
  cfg.dyn_cycles_mix = scale(nw::interpolateCostCurve(cells, mix));
  cfg.phys_cycles_conv *= mult;
  cfg.phys_cycles_ml *= mult;
  return out;
}

} // namespace grist::bench
