// The AI-enhanced workflow end to end (paper section 3.2): generate
// training data through the Table 1 scenario pipeline, train the Q1/Q2 CNN
// and the radiation MLP, save/reload the weights, and run the coupled
// DP-ML model against DP-PHY for a short climate comparison.
//
//   ./climate_ml [grid_level=3] [days=1]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "grist/common/timer.hpp"
#include "grist/core/model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/ml/traindata.hpp"

int main(int argc, char** argv) {
  using namespace grist;
  const int level = argc > 1 ? std::atoi(argv[1]) : 3;
  const double days = argc > 2 ? std::atof(argv[2]) : 1.0;
  const int nlev = 20;

  // ---- 1) training data from the Table 1 scenarios ----
  std::printf("== AI-enhanced GRIST workflow ==\n\n1) training data (Table 1 periods):\n");
  std::vector<ml::ColumnSample> cols;
  std::vector<ml::RadSample> rads;
  for (const auto& sc : ml::table1Scenarios()) {
    physics::PhysicsInput in = ml::synthesizeColumns(sc, 192, nlev);
    physics::ConventionalSuite conv(in.ncolumns, nlev);
    ml::harvestSamples(in, conv, 600.0, cols, rads);
    std::printf("   %-18s ONI %+0.1f -> %zu samples\n", sc.period.c_str(), sc.oni,
                cols.size());
  }
  std::vector<ml::ColumnSample> train, test;
  ml::splitTrainTest(cols, 42, train, test);

  // ---- 2) train the two networks ----
  std::printf("\n2) training (CNN: Q1/Q2 tendencies; MLP: gsw/glw):\n");
  ml::Q1Q2NetConfig qcfg;
  qcfg.nlev = nlev;
  qcfg.channels = 24;
  qcfg.res_units = 2;
  auto q1q2 = std::make_shared<ml::Q1Q2Net>(qcfg);
  ml::RadMlpConfig rcfg;
  rcfg.nlev = nlev;
  rcfg.hidden = 48;
  auto rad = std::make_shared<ml::RadMlp>(rcfg);
  q1q2->fitNormalization(train);
  rad->fitNormalization(rads);
  ml::Adam a1(ml::AdamConfig{.lr = 2e-3f}), a2(ml::AdamConfig{.lr = 2e-3f});
  a1.registerParams(q1q2->paramViews());
  a2.registerParams(rad->paramViews());
  for (int epoch = 0; epoch < 6; ++epoch) {
    for (std::size_t base = 0; base + 64 <= train.size(); base += 64) {
      std::vector<ml::ColumnSample> batch(train.begin() + base,
                                          train.begin() + base + 64);
      q1q2->trainBatch(batch, a1);
    }
    const double lr = rad->trainBatch(rads, a2);
    std::printf("   epoch %d: CNN test loss %.3f, MLP loss %.3f\n", epoch,
                q1q2->evaluate(test), lr);
  }

  // ---- 3) save + reload (the artifact ships weight files) ----
  const auto dir = std::filesystem::temp_directory_path() / "grist_ml_weights";
  std::filesystem::create_directories(dir);
  q1q2->save((dir / "q1q2.bin").string());
  rad->save((dir / "rad.bin").string());
  auto q1q2_loaded = std::make_shared<ml::Q1Q2Net>(qcfg);
  q1q2_loaded->load((dir / "q1q2.bin").string());
  auto rad_loaded = std::make_shared<ml::RadMlp>(rcfg);
  rad_loaded->load((dir / "rad.bin").string());
  std::printf("\n3) weights saved to and reloaded from %s\n", dir.string().c_str());

  // ---- 4) coupled comparison: DP-PHY vs DP-ML ----
  std::printf("\n4) coupled runs on G%d for %.1f day(s):\n", level, days);
  const grid::HexMesh mesh = grid::buildHexMesh(level);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  core::ModelConfig base;
  base.dyn.nlev = nlev;
  base.dyn.dt = 600.0;
  base.dyn.w_damp_tau = 1200.0;
  base.dyn.div_damp = 0.06;
  base.dyn.diff_coef = 0.02;
  base.trac_interval = 4;
  base.phy_interval = 4;
  const int nsteps = static_cast<int>(days * 86400.0 / base.dyn.dt);

  for (const bool use_ml : {false, true}) {
    core::ModelConfig cfg = base;
    cfg.scheme = use_ml ? core::PhysicsScheme::kMl : core::PhysicsScheme::kConventional;
    cfg.q1q2 = q1q2_loaded;
    cfg.rad_mlp = rad_loaded;
    core::Model model(mesh, trsk, cfg, dycore::initBaroclinicWave(mesh, cfg.dyn, 3));
    Timer timer;
    model.run(nsteps);
    const auto rain = model.meanPrecipRate();
    double mean_rain = 0, area = 0;
    for (Index c = 0; c < mesh.ncells; ++c) {
      mean_rain += rain[c] * mesh.cell_area[c];
      area += mesh.cell_area[c];
    }
    std::printf("   %-7s: %.1f s wall, global-mean rain %.2f mm/day\n",
                model.schemeName(), timer.elapsed(), mean_rain / area);
  }
  return 0;
}
