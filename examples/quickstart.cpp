// Quickstart: build a grid, initialize a baroclinic-wave state, run the
// coupled model (dynamics + tracer transport + conventional physics) for a
// few simulated hours, and print global diagnostics.
//
//   ./quickstart [grid_level=3] [hours=6]
#include <cstdio>
#include <cstdlib>

#include "grist/core/model.hpp"
#include "grist/dycore/diagnostics.hpp"
#include "grist/dycore/init.hpp"
#include "grist/grid/counts.hpp"
#include "grist/grid/reorder.hpp"
#include "grist/dycore/dycore.hpp"

int main(int argc, char** argv) {
  using namespace grist;
  const int level = argc > 1 ? std::atoi(argv[1]) : 3;
  const double hours = argc > 2 ? std::atof(argv[2]) : 6.0;

  std::printf("grist-sw quickstart: G%d (%.0f km), %.1f simulated hours\n\n",
              level, grid::nominalSpacingKm(level), hours);

  // 1) Grid + TRSK operator weights.
  const grid::HexMesh mesh = grid::buildReorderedHexMesh(level);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  std::printf("grid: %d cells, %d edges, %d vertices (BFS-reordered)\n",
              mesh.ncells, mesh.nedges, mesh.nvertices);

  // 2) Model configuration (DP dycore + conventional physics = "DP-PHY").
  core::ModelConfig cfg;
  cfg.dyn.nlev = 20;
  cfg.dyn.dt = 450.0;
  cfg.dyn.w_damp_tau = 900.0;  // quasi-hydrostatic damping at coarse grids
  cfg.trac_interval = 4;
  cfg.phy_interval = 4;

  // 3) Initial condition and model.
  core::Model model(mesh, trsk, cfg,
                    dycore::initBaroclinicWave(mesh, cfg.dyn, /*ntracers=*/3));
  std::printf("scheme: %s\n\n", model.schemeName());

  const double mass0 = dycore::totalDryMass(mesh, model.state());
  const int nsteps = static_cast<int>(hours * 3600.0 / cfg.dyn.dt);
  const int report = std::max(1, nsteps / 6);
  std::printf("%8s %14s %14s %12s\n", "sim h", "dry mass drift", "kinetic energy",
              "max rain");
  for (int s = 0; s < nsteps; ++s) {
    model.step();
    if ((s + 1) % report == 0) {
      const double mass = dycore::totalDryMass(mesh, model.state());
      const double ke = dycore::totalKineticEnergy(mesh, model.state());
      double rain_max = 0;
      for (const double r : model.meanPrecipRate()) rain_max = std::max(rain_max, r);
      std::printf("%8.1f %14.3e %14.4e %9.2f mm/d\n", model.simSeconds() / 3600.0,
                  mass / mass0 - 1.0, ke, rain_max);
    }
  }
  std::printf("\ndone: %.2f simulated days.\n", model.simDays());
  return 0;
}
