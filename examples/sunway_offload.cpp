// SWGOMP offload walkthrough on the simulated SW26010P (paper section 3.3):
// take one dycore loop, run it (1) on the MPE, (2) offloaded to the 64 CPEs
// (the `!$omp target parallel do` of Fig. 4), (3) with the
// address-distributing pool allocator (Fig. 6), (4) in mixed precision, and
// (5) with omnicopy LDM staging -- printing the cycle counts and cache hit
// ratios at each stage, like a porting session on the real machine.
//
//   ./sunway_offload [grid_level=3]
#include <cstdio>
#include <cstdlib>

#include "grist/grid/trsk.hpp"
#include "grist/swgomp/sim_kernels.hpp"

int main(int argc, char** argv) {
  using namespace grist;
  using swgomp::AllocPolicy;
  using swgomp::SimConfig;
  using swgomp::SimKernel;
  using sunway::SimPrecision;

  const int level = argc > 1 ? std::atoi(argv[1]) : 3;
  std::printf("SWGOMP porting walkthrough on the SW26010P simulator (G%d slice)\n\n",
              level);
  const grid::HexMesh mesh = grid::buildHexMesh(level);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
  sunway::CoreGroup cg;

  const SimKernel kernel = SimKernel::kTracerHoriFluxLimiter;
  std::printf("kernel: %s (touches the most arrays of any dycore loop)\n\n",
              swgomp::kernelName(kernel));

  struct Stage {
    const char* what;
    SimConfig config;
  };
  SimConfig base;
  base.nlev = 30;
  const Stage stages[] = {
      {"1. MPE baseline (serial, double)",
       {AllocPolicy::kWayAligned, SimPrecision::kDouble, false, false, 30}},
      {"2. !$omp target parallel do (64 CPEs)",
       {AllocPolicy::kWayAligned, SimPrecision::kDouble, true, false, 30}},
      {"3. + address-distributing allocator (DST)",
       {AllocPolicy::kDistributed, SimPrecision::kDouble, true, false, 30}},
      {"4. + mixed precision (ns = float)",
       {AllocPolicy::kDistributed, SimPrecision::kSingle, true, false, 30}},
  };

  double baseline = 0;
  for (const Stage& stage : stages) {
    const double cycles = swgomp::runSimKernel(kernel, mesh, trsk, stage.config, cg);
    if (baseline == 0) baseline = cycles;
    // Hit ratio of CPE 0's LDCache for the offloaded stages.
    const double hit = stage.config.on_cpe ? cg.cpe(0).cache().hitRatio() : -1.0;
    std::printf("%-45s %12.0f cycles  speedup %6.1fx", stage.what, cycles,
                baseline / cycles);
    if (hit >= 0) std::printf("  LDCache hit %.1f%%", hit * 100.0);
    std::printf("\n");
  }

  std::printf(
      "\nThe same progression in the paper's terms: port with a single\n"
      "!$omp target directive, fix cache thrashing with the pool allocator,\n"
      "then convert insensitive arithmetic to the ns kind. Fig. 9 of the\n"
      "paper reports 20-70x for exactly this progression on real silicon;\n"
      "bench_fig9_kernels reproduces the full kernel matrix.\n");
  return 0;
}
