// Idealized-typhoon case study (the paper's "23.7" Doksuri experiment,
// section 4.4): spin an idealized warm-core vortex under the MIX-PHY
// scheme, track its center, intensity and rainfall, and write the rain
// field through the grouped parallel I/O layer.
//
//   ./typhoon_doksuri [grid_level=4] [hours=12]
#include <cstdio>
#include <cstdlib>
#include <filesystem>

#include "grist/core/model.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/grouped_writer.hpp"
#include "grist/parallel/decompose.hpp"

int main(int argc, char** argv) {
  using namespace grist;
  const int level = argc > 1 ? std::atoi(argv[1]) : 4;
  const double hours = argc > 2 ? std::atof(argv[2]) : 12.0;

  std::printf("grist-sw idealized typhoon (G%d, %.0f h, MIX-PHY)\n\n", level, hours);
  const grid::HexMesh mesh = grid::buildHexMesh(level);
  const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);

  core::ModelConfig cfg;
  cfg.dyn.nlev = 20;
  cfg.dyn.dt = level >= 5 ? 240.0 : 300.0;
  cfg.dyn.ns = precision::NsMode::kSingle;
  cfg.dyn.w_damp_tau = 2.0 * cfg.dyn.dt;
  cfg.dyn.div_damp = 0.06;
  cfg.dyn.diff_coef = 0.02;
  cfg.trac_interval = 4;
  cfg.phy_interval = 4;

  dycore::TyphoonParams storm;
  core::Model model(mesh, trsk, cfg, dycore::initTyphoon(mesh, cfg.dyn, storm, 3));

  // Track the minimum surface pressure within 40 degrees of the genesis
  // point (a global minimum search can lock onto polar lows instead).
  const Vec3 genesis = toCartesian({storm.lon0, storm.lat0});
  const auto storm_center = [&]() {
    const auto ps = model.state().surfacePressure(cfg.dyn.ptop);
    Index best = kInvalidIndex;
    for (Index c = 0; c < mesh.ncells; ++c) {
      if (greatCircleDistance(mesh.cell_x[c], genesis, 1.0) > 0.7) continue;
      if (best == kInvalidIndex || ps[c] < ps[best]) best = c;
    }
    return std::make_pair(best, ps[best]);
  };

  std::printf("%7s %10s %10s %10s %12s\n", "sim h", "lon", "lat", "min ps",
              "max rain");
  const int nsteps = static_cast<int>(hours * 3600.0 / cfg.dyn.dt);
  const int report = std::max(1, nsteps / 8);
  for (int s = 0; s < nsteps; ++s) {
    model.step();
    if ((s + 1) % report == 0) {
      const auto [cell, ps_min] = storm_center();
      double rain_max = 0;
      for (const double r : model.meanPrecipRate()) rain_max = std::max(rain_max, r);
      std::printf("%7.1f %9.1fE %9.1fN %8.1f hPa %9.2f mm/d\n",
                  model.simSeconds() / 3600.0, mesh.cell_ll[cell].lon * 57.2958,
                  mesh.cell_ll[cell].lat * 57.2958, ps_min / 100.0, rain_max);
    }
  }

  // Write the mean rain-rate field via the grouped parallel writer (the
  // paper's grouped I/O strategy, section 3.1.3).
  const Index nranks = 8;
  const parallel::Decomposition decomp = parallel::decompose(mesh, nranks);
  std::vector<parallel::Field> rank_rain;
  const auto rain = model.meanPrecipRate();
  for (Index r = 0; r < nranks; ++r) {
    const auto& dom = decomp.domains[r];
    parallel::Field f(dom.mesh.ncells, 1, 0.0);
    for (Index lc = 0; lc < dom.ncells_owned; ++lc) {
      f(lc, 0) = rain[dom.cell_global[lc]];
    }
    rank_rain.push_back(std::move(f));
  }
  const std::string outdir =
      (std::filesystem::temp_directory_path() / "grist_typhoon_out").string();
  io::GroupedWriter writer(outdir, nranks, /*group_size=*/4);
  writer.writeCellField("rain_rate", decomp, rank_rain);
  std::printf("\nrain field written via grouped I/O (%lld write calls, %lld bytes) to %s\n",
              static_cast<long long>(writer.stats().write_calls),
              static_cast<long long>(writer.stats().bytes), outdir.c_str());
  return 0;
}
