// The grist-sw command-line driver: run a namelist-described configuration
// for a given number of steps, with optional restart read/write -- the
// analog of the paper artifact's ParGRIST-GCM executable driven by
// run-*.sh scripts (Appendix B).
//
//   grist_run <namelist> [steps]
//
// Extra namelist keys beyond the factory's (see core/factory.hpp):
//   steps (48)            dynamics steps to run (overridden by argv[2])
//   restart_in            restart file to resume from
//   restart_out           restart file to write at the end
//   report_interval (12)  steps between progress lines
#include <cstdio>
#include <cstdlib>

#include "grist/common/timer.hpp"
#include "grist/core/factory.hpp"
#include "grist/dycore/diagnostics.hpp"
#include "grist/io/restart.hpp"

int main(int argc, char** argv) {
  using namespace grist;
  if (argc < 2) {
    std::fprintf(stderr, "usage: grist_run <namelist> [steps]\n");
    return 2;
  }
  Config config;
  try {
    config = Config::fromFile(argv[1]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grist_run: %s\n", e.what());
    return 2;
  }

  std::unique_ptr<core::ModelBundle> bundle;
  try {
    bundle = core::makeModelFromConfig(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grist_run: %s\n", e.what());
    return 2;
  }
  core::Model& model = *bundle->model;
  const grid::HexMesh& mesh = bundle->mesh;

  const std::string restart_in = config.getString("restart_in", "");
  if (!restart_in.empty()) {
    std::vector<double> tskin;
    const io::RestartHeader header = io::readRestart(restart_in, model.state(), tskin);
    model.setTskin(std::move(tskin));
    model.setSimSeconds(header.sim_seconds);
    model.resyncAfterRestart();
    std::printf("resumed from %s at sim day %.3f\n", restart_in.c_str(),
                header.sim_seconds / 86400.0);
  }

  const int steps = argc > 2 ? std::atoi(argv[2]) : config.getInt("steps", 48);
  const int report = std::max(1, config.getInt("report_interval", 12));
  std::printf("scheme %s, grid G%d (%d cells), %d steps\n", model.schemeName(),
              config.getInt("grid_level", 4), mesh.ncells, steps);

  Timer timer;
  for (int s = 0; s < steps; ++s) {
    model.step();
    if ((s + 1) % report == 0) {
      double rain_max = 0;
      for (const double r : model.meanPrecipRate()) rain_max = std::max(rain_max, r);
      std::printf("step %6d  sim day %8.3f  KE %.4e  max rain %7.2f mm/d\n", s + 1,
                  model.simDays(), dycore::totalKineticEnergy(mesh, model.state()),
                  rain_max);
    }
  }
  const double wall = timer.elapsed();
  std::printf("done: %.3f simulated days in %.1f s wall (%.1f SDPD on this host)\n",
              model.simDays(), wall, model.simDays() / (wall / 86400.0));

  const std::string restart_out = config.getString("restart_out", "");
  if (!restart_out.empty()) {
    io::writeRestart(restart_out, model.state(), model.tskin(), model.simSeconds());
    std::printf("restart written to %s\n", restart_out.c_str());
  }
  return 0;
}
