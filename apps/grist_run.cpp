// The grist-sw command-line driver: run a namelist-described configuration
// for a given number of steps, with elastic checkpoint/restart -- the
// analog of the paper artifact's ParGRIST-GCM executable driven by
// run-*.sh scripts (Appendix B).
//
//   grist_run <namelist> [steps] [--ranks N] [--transport threads|shm]
//             [--pin] [--wire-latency S]
//             [--checkpoint-every K --checkpoint-dir D] [--restart PATH]
//             [--ensemble M] [--perturb-seed S]
//
// Extra namelist keys beyond the factory's (see core/factory.hpp):
//   steps (48)            dynamics steps to run (overridden by argv[2])
//   restart_in            restart file to resume from (--restart overrides)
//   restart_out           restart file to write at the end
//   report_interval (12)  steps between progress lines
//
// Checkpoint/restart (io/snapshot.hpp, core/checkpoint.hpp):
//   --checkpoint-every K  write an atomic snapshot every K dynamics steps
//   --checkpoint-dir D    into D/ckpt-<step>.grist (keep-last-2 rotation)
//   --restart PATH        resume from a snapshot (v2) or a legacy GRISTSW1
//                         restart file. Checkpoints store the GLOBAL state,
//                         so a checkpoint written at N ranks restores at
//                         any M ranks (repartition-on-restart), across
//                         both transports.
//
// With --ranks N > 1 the run becomes the multi-rank dynamics step (the
// decomposition gate configuration: dynamics only, no physics/IO):
//   --transport threads   the in-process persistent worker pool
//   --transport shm       one OS process per rank over the POSIX
//                         shared-memory transport; this binary fork+execs
//                         ITSELF as the rank workers, so worker dispatch
//                         runs first in main(). A rank that dies takes the
//                         whole run down and its exit code is propagated.
//   --pin                 sched_setaffinity rank r -> core r % ncores (shm)
//   --wire-latency S      emulate S seconds of interconnect delivery delay
//
// Batched ensembles (core/ensemble_runner.hpp):
//   --ensemble M          step M members as one fused workload. Shares the
//                         mesh/TRSK/ML weights across members and batches
//                         the ML physics GEMMs cross-member; each member
//                         stays bitwise identical to the same seed run solo.
//   --perturb-seed S      deterministic theta perturbation seed (default 0 =
//                         identical members); needs --ensemble. The report
//                         lines add the area-weighted surface-pressure
//                         ensemble spread. Ensemble runs are single-rank and
//                         do not combine with checkpoint/restart.
#include <sys/stat.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "grist/common/timer.hpp"
#include "grist/core/checkpoint.hpp"
#include "grist/core/factory.hpp"
#include "grist/core/mp_runner.hpp"
#include "grist/core/parallel_model.hpp"
#include "grist/dycore/diagnostics.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/restart.hpp"
#include "grist/io/snapshot.hpp"
#include "grist/partition/partitioner.hpp"

namespace {

/// Validated checkpoint/restart options shared by all run modes.
struct CkptOpts {
  int every = 0;          ///< 0 = no periodic checkpoints
  std::string dir;
  std::string restart;    ///< snapshot/legacy file to resume from
};

bool fileExists(const std::string& path) {
  struct stat st{};
  return ::stat(path.c_str(), &st) == 0;
}

/// The multi-rank dynamics run (both transports share the reporting).
int runMultiRank(const grist::Config& config, int steps, grist::Index nranks,
                 const std::string& transport, bool pin, double wire_latency,
                 const CkptOpts& ckpt) {
  using namespace grist;
  const int glevel = config.getInt("grid_level", 4);
  dycore::DycoreConfig cfg;
  cfg.nlev = config.getInt("nlev", 20);
  cfg.dt = config.getDouble("dt_dyn", 300.0);
  const std::string scheme = config.getString("scheme", "DP-PHY");
  cfg.ns = scheme.rfind("MIX", 0) == 0 ? precision::NsMode::kSingle
                                       : precision::NsMode::kDouble;
  const int ntracers = 1;  // decomposition gate configuration

  std::printf("multi-rank dynamics: grid G%d, nlev %d, %d ranks, transport %s%s\n",
              glevel, cfg.nlev, static_cast<int>(nranks), transport.c_str(),
              pin ? " (pinned)" : "");
  long step_base = 0;  // global step the run resumes at
  Timer timer;
  parallel::CommStats stats;
  // Chunked stepping shared by both transports: run to the next checkpoint
  // boundary, snapshot the gathered global state, repeat.
  const auto drive = [&](auto&& run_steps, auto&& capture) {
    long done = 0;
    while (done < steps) {
      const int chunk =
          ckpt.every > 0
              ? static_cast<int>(std::min<long>(ckpt.every, steps - done))
              : static_cast<int>(steps - done);
      run_steps(chunk);
      done += chunk;
      if (ckpt.every > 0 && (done % ckpt.every == 0 || done == steps)) {
        const std::string path = io::writeCheckpoint(
            ckpt.dir, capture(step_base + done), step_base + done);
        std::printf("checkpoint: step %ld -> %s\n", step_base + done,
                    path.c_str());
      }
    }
  };
  if (transport == "shm") {
    core::mp::RunSpec spec;
    spec.grid_level = glevel;
    spec.nlev = cfg.nlev;
    spec.dt = cfg.dt;
    spec.ns = cfg.ns;
    spec.ntracers = ntracers;
    spec.nranks = nranks;
    spec.pin = pin;
    spec.wire_latency = wire_latency;
    spec.restart = ckpt.restart;
    if (!ckpt.restart.empty()) {
      // Validate in the parent for a friendly error before spawning the
      // fleet (each worker re-reads + re-validates the file itself).
      const grid::HexMesh mesh = grid::buildHexMesh(glevel);
      core::loadDynRestart(ckpt.restart, mesh, cfg, ntracers, &step_base);
      std::printf("resuming from %s at step %ld\n", ckpt.restart.c_str(),
                  step_base);
    }
    core::mp::MpSession session(spec);
    const std::uint64_t part_fp = partition::Partitioner::fingerprint(
        partition::Partitioner::partition(session.mesh(), nranks));
    drive([&](int n) { session.run(n); },
          [&](long step) {
            return core::captureDynRun(session.gather(), cfg, glevel, step,
                                       nranks, part_fp);
          });
    stats = session.commStats();
  } else if (transport == "threads") {
    const grid::HexMesh mesh = grid::buildHexMesh(glevel);
    const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
    dycore::State initial =
        ckpt.restart.empty()
            ? dycore::initBaroclinicWave(mesh, cfg, ntracers)
            : core::loadDynRestart(ckpt.restart, mesh, cfg, ntracers,
                                   &step_base);
    if (!ckpt.restart.empty()) {
      std::printf("resuming from %s at step %ld\n", ckpt.restart.c_str(),
                  step_base);
    }
    core::ParallelModel model(mesh, trsk, cfg, nranks, initial);
    model.setWireLatency(wire_latency);
    const std::uint64_t part_fp =
        partition::Partitioner::fingerprint(model.decomposition().cell_part);
    drive([&](int n) { model.run(n); },
          [&](long step) {
            return core::captureDynRun(model.gatherState(), cfg, glevel, step,
                                       nranks, part_fp);
          });
    stats = model.commStats();
  } else {
    std::fprintf(stderr, "grist_run: unknown transport '%s' (threads|shm)\n",
                 transport.c_str());
    return 2;
  }
  const double wall = timer.elapsed();
  const double sdays = steps * cfg.dt / 86400.0;
  std::printf("done: %d steps (%.3f simulated days) in %.1f s wall (%.1f SDPD)\n",
              steps, sdays, wall, sdays / (wall / 86400.0));
  std::printf("comm: %lld messages, %.3f MB, %lld exchange rounds\n",
              static_cast<long long>(stats.messages), stats.bytes / 1.0e6,
              static_cast<long long>(stats.exchanges));
  return 0;
}

/// The batched ensemble run: M members stepped as one fused workload.
int runEnsemble(const grist::Config& config, int steps, int members,
                std::uint64_t perturb_seed) {
  using namespace grist;
  std::unique_ptr<core::EnsembleBundle> bundle =
      core::makeEnsembleFromConfig(config, members, perturb_seed);
  core::EnsembleRunner& runner = *bundle->runner;
  const int report = std::max(1, config.getInt("report_interval", 12));
  std::printf(
      "ensemble: %d members, scheme %s, grid G%d (%d cells), %d steps, "
      "seed %llu\n",
      runner.members(), config.getString("scheme", "DP-PHY").c_str(),
      config.getInt("grid_level", 4), bundle->mesh.ncells, steps,
      static_cast<unsigned long long>(perturb_seed));

  // Area-weighted global mean of the per-cell ensemble-mean ps.
  const auto global_mean_ps = [&] {
    const std::vector<double> ps = runner.meanSurfacePressure();
    double num = 0.0, den = 0.0;
    for (Index c = 0; c < bundle->mesh.ncells; ++c) {
      num += ps[static_cast<std::size_t>(c)] * bundle->mesh.cell_area[c];
      den += bundle->mesh.cell_area[c];
    }
    return num / den;
  };

  Timer timer;
  for (int s = 0; s < steps; ++s) {
    runner.step();
    if ((s + 1) % report == 0) {
      std::printf(
          "step %6d  sim day %8.3f  mean ps %9.1f Pa  spread %.4e Pa\n",
          s + 1, runner.simDays(), global_mean_ps(), runner.globalSpread());
    }
  }
  const double wall = timer.elapsed();
  const double member_days = runner.members() * runner.simDays();
  std::printf(
      "done: %d members x %.3f simulated days in %.1f s wall "
      "(%.1f member-SDPD on this host)\n",
      runner.members(), runner.simDays(), wall,
      member_days / (wall / 86400.0));
  return 0;
}

void usage() {
  std::fprintf(stderr,
               "usage: grist_run <namelist> [steps] [--ranks N] "
               "[--transport threads|shm] [--pin] [--wire-latency S]\n"
               "                 [--checkpoint-every K --checkpoint-dir D] "
               "[--restart PATH]\n"
               "                 [--ensemble M] [--perturb-seed S]\n");
}

} // namespace

int main(int argc, char** argv) {
  using namespace grist;
  // Worker dispatch first: under --transport shm this binary is re-exec'd
  // as the rank worker processes.
  if (auto rc = core::mp::maybeRunWorker(argc, argv)) return *rc;

  Index ranks = 1;
  std::string transport = "threads";
  bool pin = false;
  double wire_latency = 0.0;
  CkptOpts ckpt;
  int ensemble = 0;                  // 0 = solo run
  std::uint64_t perturb_seed = 0;
  bool seed_given = false;
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "grist_run: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ranks") {
      ranks = std::atoi(value());
    } else if (arg == "--transport") {
      transport = value();
    } else if (arg == "--pin") {
      pin = true;
    } else if (arg == "--wire-latency") {
      wire_latency = std::atof(value());
    } else if (arg == "--checkpoint-every") {
      ckpt.every = std::atoi(value());
      if (ckpt.every <= 0) {
        std::fprintf(stderr,
                     "grist_run: --checkpoint-every needs a positive step "
                     "count (got '%d')\n",
                     ckpt.every);
        return 2;
      }
    } else if (arg == "--checkpoint-dir") {
      ckpt.dir = value();
    } else if (arg == "--restart") {
      ckpt.restart = value();
    } else if (arg == "--ensemble") {
      ensemble = std::atoi(value());
      if (ensemble <= 0) {
        std::fprintf(stderr,
                     "grist_run: --ensemble needs a positive member count "
                     "(got '%d')\n",
                     ensemble);
        return 2;
      }
    } else if (arg == "--perturb-seed") {
      perturb_seed = std::strtoull(value(), nullptr, 10);
      seed_given = true;
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (pos.empty()) {
    usage();
    return 2;
  }
  if (transport != "threads" && transport != "shm") {
    std::fprintf(stderr, "grist_run: unknown transport '%s' (threads|shm)\n",
                 transport.c_str());
    return 2;
  }
  if (ckpt.every > 0 && ckpt.dir.empty()) {
    std::fprintf(stderr,
                 "grist_run: --checkpoint-every needs --checkpoint-dir\n");
    return 2;
  }
  if (!ckpt.dir.empty() && ckpt.every == 0) {
    std::fprintf(stderr,
                 "grist_run: --checkpoint-dir needs --checkpoint-every\n");
    return 2;
  }
  if (!ckpt.restart.empty() && !fileExists(ckpt.restart)) {
    std::fprintf(stderr, "grist_run: restart file not found: %s\n",
                 ckpt.restart.c_str());
    return 2;
  }
  if (seed_given && ensemble == 0) {
    std::fprintf(stderr, "grist_run: --perturb-seed needs --ensemble\n");
    return 2;
  }
  if (ensemble > 0 && (ranks > 1 || transport == "shm")) {
    std::fprintf(stderr,
                 "grist_run: --ensemble runs single-rank (drop --ranks/"
                 "--transport shm)\n");
    return 2;
  }
  if (ensemble > 0 &&
      (ckpt.every > 0 || !ckpt.dir.empty() || !ckpt.restart.empty())) {
    std::fprintf(stderr,
                 "grist_run: --ensemble does not combine with "
                 "checkpoint/restart flags\n");
    return 2;
  }
  Config config;
  try {
    config = Config::fromFile(pos[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grist_run: %s\n", e.what());
    return 2;
  }

  if (ensemble > 0) {
    const int steps =
        pos.size() > 1 ? std::atoi(pos[1]) : config.getInt("steps", 48);
    try {
      return runEnsemble(config, steps, ensemble, perturb_seed);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "grist_run: %s\n", e.what());
      return 2;
    }
  }

  if (ranks > 1 || transport == "shm") {
    const int steps =
        pos.size() > 1 ? std::atoi(pos[1]) : config.getInt("steps", 48);
    try {
      return runMultiRank(config, steps, std::max<Index>(ranks, 1), transport,
                          pin, wire_latency, ckpt);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "grist_run: %s\n", e.what());
      return 1;
    }
  }

  std::unique_ptr<core::ModelBundle> bundle;
  try {
    bundle = core::makeModelFromConfig(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grist_run: %s\n", e.what());
    return 2;
  }
  core::Model& model = *bundle->model;
  const grid::HexMesh& mesh = bundle->mesh;

  // --restart takes precedence over the namelist's restart_in; both accept
  // snapshot (v2) and legacy GRISTSW1 files through the same reader.
  const std::string restart_in =
      !ckpt.restart.empty() ? ckpt.restart : config.getString("restart_in", "");
  if (!restart_in.empty()) {
    try {
      model.restore(io::Snapshot::read(restart_in));
    } catch (const std::exception& e) {
      std::fprintf(stderr, "grist_run: %s\n", e.what());
      return 2;
    }
    std::printf("resumed from %s at sim day %.3f (step %ld)\n",
                restart_in.c_str(), model.simDays(), model.dynSteps());
  }

  const int steps =
      pos.size() > 1 ? std::atoi(pos[1]) : config.getInt("steps", 48);
  const int report = std::max(1, config.getInt("report_interval", 12));
  std::printf("scheme %s, grid G%d (%d cells), %d steps\n", model.schemeName(),
              config.getInt("grid_level", 4), mesh.ncells, steps);

  Timer timer;
  for (int s = 0; s < steps; ++s) {
    model.step();
    if (ckpt.every > 0 &&
        ((s + 1) % ckpt.every == 0 || s + 1 == steps)) {
      const std::string path =
          io::writeCheckpoint(ckpt.dir, model.snapshot(), model.dynSteps());
      std::printf("checkpoint: step %ld -> %s\n", model.dynSteps(),
                  path.c_str());
    }
    if ((s + 1) % report == 0) {
      double rain_max = 0;
      for (const double r : model.meanPrecipRate()) rain_max = std::max(rain_max, r);
      std::printf("step %6d  sim day %8.3f  KE %.4e  max rain %7.2f mm/d\n", s + 1,
                  model.simDays(), dycore::totalKineticEnergy(mesh, model.state()),
                  rain_max);
    }
  }
  const double wall = timer.elapsed();
  std::printf("done: %.3f simulated days in %.1f s wall (%.1f SDPD on this host)\n",
              model.simDays(), wall, model.simDays() / (wall / 86400.0));

  const std::string restart_out = config.getString("restart_out", "");
  if (!restart_out.empty()) {
    io::writeRestart(restart_out, model.state(), model.tskin(), model.simSeconds());
    std::printf("restart written to %s\n", restart_out.c_str());
  }
  return 0;
}
