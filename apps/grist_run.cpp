// The grist-sw command-line driver: run a namelist-described configuration
// for a given number of steps, with optional restart read/write -- the
// analog of the paper artifact's ParGRIST-GCM executable driven by
// run-*.sh scripts (Appendix B).
//
//   grist_run <namelist> [steps] [--ranks N] [--transport threads|shm]
//             [--pin] [--wire-latency S]
//
// Extra namelist keys beyond the factory's (see core/factory.hpp):
//   steps (48)            dynamics steps to run (overridden by argv[2])
//   restart_in            restart file to resume from
//   restart_out           restart file to write at the end
//   report_interval (12)  steps between progress lines
//
// With --ranks N > 1 the run becomes the multi-rank dynamics step (the
// decomposition gate configuration: dynamics only, no physics/IO):
//   --transport threads   the in-process persistent worker pool
//   --transport shm       one OS process per rank over the POSIX
//                         shared-memory transport; this binary fork+execs
//                         ITSELF as the rank workers, so worker dispatch
//                         runs first in main(). A rank that dies takes the
//                         whole run down and its exit code is propagated.
//   --pin                 sched_setaffinity rank r -> core r % ncores (shm)
//   --wire-latency S      emulate S seconds of interconnect delivery delay
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "grist/common/timer.hpp"
#include "grist/core/factory.hpp"
#include "grist/core/mp_runner.hpp"
#include "grist/core/parallel_model.hpp"
#include "grist/dycore/diagnostics.hpp"
#include "grist/dycore/init.hpp"
#include "grist/io/restart.hpp"

namespace {

/// The multi-rank dynamics run (both transports share the reporting).
int runMultiRank(const grist::Config& config, int steps, grist::Index nranks,
                 const std::string& transport, bool pin, double wire_latency) {
  using namespace grist;
  const int glevel = config.getInt("grid_level", 4);
  dycore::DycoreConfig cfg;
  cfg.nlev = config.getInt("nlev", 20);
  cfg.dt = config.getDouble("dt_dyn", 300.0);
  const std::string scheme = config.getString("scheme", "DP-PHY");
  cfg.ns = scheme.rfind("MIX", 0) == 0 ? precision::NsMode::kSingle
                                       : precision::NsMode::kDouble;

  std::printf("multi-rank dynamics: grid G%d, nlev %d, %d ranks, transport %s%s\n",
              glevel, cfg.nlev, static_cast<int>(nranks), transport.c_str(),
              pin ? " (pinned)" : "");
  Timer timer;
  parallel::CommStats stats;
  double sdays = 0.0;
  if (transport == "shm") {
    core::mp::RunSpec spec;
    spec.grid_level = glevel;
    spec.nlev = cfg.nlev;
    spec.dt = cfg.dt;
    spec.ns = cfg.ns;
    spec.nranks = nranks;
    spec.pin = pin;
    spec.wire_latency = wire_latency;
    core::mp::MpSession session(spec);
    session.run(steps);
    stats = session.commStats();
    sdays = steps * cfg.dt / 86400.0;
  } else if (transport == "threads") {
    const grid::HexMesh mesh = grid::buildHexMesh(glevel);
    const grid::TrskWeights trsk = grid::buildTrskWeights(mesh);
    const dycore::State initial = dycore::initBaroclinicWave(mesh, cfg);
    core::ParallelModel model(mesh, trsk, cfg, nranks, initial);
    model.setWireLatency(wire_latency);
    model.run(steps);
    stats = model.commStats();
    sdays = steps * cfg.dt / 86400.0;
  } else {
    std::fprintf(stderr, "grist_run: unknown transport '%s' (threads|shm)\n",
                 transport.c_str());
    return 2;
  }
  const double wall = timer.elapsed();
  std::printf("done: %d steps (%.3f simulated days) in %.1f s wall (%.1f SDPD)\n",
              steps, sdays, wall, sdays / (wall / 86400.0));
  std::printf("comm: %lld messages, %.3f MB, %lld exchange rounds\n",
              static_cast<long long>(stats.messages), stats.bytes / 1.0e6,
              static_cast<long long>(stats.exchanges));
  return 0;
}

} // namespace

int main(int argc, char** argv) {
  using namespace grist;
  // Worker dispatch first: under --transport shm this binary is re-exec'd
  // as the rank worker processes.
  if (auto rc = core::mp::maybeRunWorker(argc, argv)) return *rc;

  Index ranks = 1;
  std::string transport = "threads";
  bool pin = false;
  double wire_latency = 0.0;
  std::vector<char*> pos;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "grist_run: %s needs a value\n", arg.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--ranks") {
      ranks = std::atoi(value());
    } else if (arg == "--transport") {
      transport = value();
    } else if (arg == "--pin") {
      pin = true;
    } else if (arg == "--wire-latency") {
      wire_latency = std::atof(value());
    } else {
      pos.push_back(argv[i]);
    }
  }
  if (pos.empty()) {
    std::fprintf(stderr,
                 "usage: grist_run <namelist> [steps] [--ranks N] "
                 "[--transport threads|shm] [--pin] [--wire-latency S]\n");
    return 2;
  }
  if (transport != "threads" && transport != "shm") {
    std::fprintf(stderr, "grist_run: unknown transport '%s' (threads|shm)\n",
                 transport.c_str());
    return 2;
  }
  Config config;
  try {
    config = Config::fromFile(pos[0]);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grist_run: %s\n", e.what());
    return 2;
  }

  if (ranks > 1 || transport == "shm") {
    const int steps =
        pos.size() > 1 ? std::atoi(pos[1]) : config.getInt("steps", 48);
    try {
      return runMultiRank(config, steps, std::max<Index>(ranks, 1), transport,
                          pin, wire_latency);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "grist_run: %s\n", e.what());
      return 1;
    }
  }

  std::unique_ptr<core::ModelBundle> bundle;
  try {
    bundle = core::makeModelFromConfig(config);
  } catch (const std::exception& e) {
    std::fprintf(stderr, "grist_run: %s\n", e.what());
    return 2;
  }
  core::Model& model = *bundle->model;
  const grid::HexMesh& mesh = bundle->mesh;

  const std::string restart_in = config.getString("restart_in", "");
  if (!restart_in.empty()) {
    std::vector<double> tskin;
    const io::RestartHeader header = io::readRestart(restart_in, model.state(), tskin);
    model.setTskin(std::move(tskin));
    model.setSimSeconds(header.sim_seconds);
    model.resyncAfterRestart();
    std::printf("resumed from %s at sim day %.3f\n", restart_in.c_str(),
                header.sim_seconds / 86400.0);
  }

  const int steps =
      pos.size() > 1 ? std::atoi(pos[1]) : config.getInt("steps", 48);
  const int report = std::max(1, config.getInt("report_interval", 12));
  std::printf("scheme %s, grid G%d (%d cells), %d steps\n", model.schemeName(),
              config.getInt("grid_level", 4), mesh.ncells, steps);

  Timer timer;
  for (int s = 0; s < steps; ++s) {
    model.step();
    if ((s + 1) % report == 0) {
      double rain_max = 0;
      for (const double r : model.meanPrecipRate()) rain_max = std::max(rain_max, r);
      std::printf("step %6d  sim day %8.3f  KE %.4e  max rain %7.2f mm/d\n", s + 1,
                  model.simDays(), dycore::totalKineticEnergy(mesh, model.state()),
                  rain_max);
    }
  }
  const double wall = timer.elapsed();
  std::printf("done: %.3f simulated days in %.1f s wall (%.1f SDPD on this host)\n",
              model.simDays(), wall, model.simDays() / (wall / 86400.0));

  const std::string restart_out = config.getString("restart_out", "");
  if (!restart_out.empty()) {
    io::writeRestart(restart_out, model.state(), model.tskin(), model.simSeconds());
    std::printf("restart written to %s\n", restart_out.c_str());
  }
  return 0;
}
